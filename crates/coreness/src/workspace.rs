//! [`PeelWorkspace`]: reusable scratch buffers making steady-state peeling
//! allocation-free.
//!
//! Every DCCS algorithm calls the `dCC` peeling procedure once per visited
//! layer subset — up to `C(l, s)` times per run. The original implementation
//! allocated `|L|·n` degree counters, a removal queue, and a queued-flag
//! vector on every call, which dominated the runtime on small and medium
//! graphs. A `PeelWorkspace` owns those buffers and grows them monotonically;
//! after the first call at a given `(n, |L|)` shape, peeling performs no heap
//! allocation at all.
//!
//! Two peeling primitives are exposed:
//!
//! * [`PeelWorkspace::peel_in_place`] — the multi-layer `dCC` cascade
//!   (Appendix B): shrinks a candidate [`VertexSet`] to the maximal subset
//!   whose members have degree ≥ `d` inside it on every layer of `L`.
//! * [`PeelWorkspace::peel_layer_in_place`] — the single-layer d-core
//!   threshold peel used by preprocessing.
//! * [`PeelWorkspace::core_numbers_into`] — the Batagelj–Zaversnik bin-sort
//!   core decomposition writing into a caller-provided output slice.
//!
//! Free functions that keep the historical allocating signatures
//! ([`crate::d_coherent_core`], [`crate::core_numbers_within`], …) borrow a
//! thread-local workspace through [`with_thread_workspace`], so every caller
//! benefits without signature churn; the search algorithms additionally own
//! explicit workspaces (one per worker thread under the parallel fan-out).

use mlgraph::{CompressedSubgraph, Csr, DenseSubgraph, Layer, MultiLayerGraph, Vertex, VertexSet};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cooperative cancellation probe checked at **cascade-frontier**
/// granularity inside the peeling loops.
///
/// A probe is the lowest level of the engine's query-limit machinery: the
/// search layer arms one per query (carrying the query's wall-clock
/// deadline and an externally settable flag) and installs it on every
/// worker's [`PeelWorkspace`] via [`PeelWorkspace::set_probe`]. The cascade
/// loops poll it once per removal frontier (never inside the word loops),
/// and a tripped probe makes the cascade return early — leaving the alive
/// set a **superset** of the true core, which the caller must treat as
/// incomplete. A workspace with no probe installed (the default) pays one
/// predictable branch per frontier.
#[derive(Debug, Default)]
pub struct CancelProbe {
    /// Set externally ([`CancelProbe::cancel`]) or latched when the
    /// deadline is first observed as passed.
    flag: AtomicBool,
    /// Wall-clock deadline; `None` means the probe only trips on
    /// [`CancelProbe::cancel`].
    deadline: Option<Instant>,
    /// Test hook ([`CancelProbe::trip_after_polls`]): when non-zero, the
    /// countdown of `is_hit` polls left before the probe trips on its own.
    poll_trip: AtomicU32,
}

impl CancelProbe {
    /// A probe that only trips when [`CancelProbe::cancel`] is called.
    pub fn new() -> Self {
        CancelProbe::default()
    }

    /// A probe that additionally trips once `deadline` has passed.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelProbe {
            flag: AtomicBool::new(false),
            deadline: Some(deadline),
            poll_trip: AtomicU32::new(0),
        }
    }

    /// Test hook: makes the probe trip on its own on the `n`-th subsequent
    /// [`CancelProbe::is_hit`] poll (`n ≥ 1`), deterministically reproducing
    /// a deadline that passes **mid-cascade** — between two cooperative
    /// checkpoints — without touching the clock. Single-writer use only
    /// (arm once, then poll); `n == 0` disarms.
    pub fn trip_after_polls(&self, n: u32) {
        self.poll_trip.store(n, Ordering::Relaxed);
    }

    /// Trips the probe; every subsequent [`CancelProbe::is_hit`] returns
    /// `true`.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag was explicitly set (does not consult the clock).
    pub fn cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The probe's deadline, when it has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether the probe has tripped — by [`CancelProbe::cancel`] or by the
    /// deadline passing (latched into the flag so later polls skip the
    /// clock read).
    pub fn is_hit(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.flag.store(true, Ordering::Relaxed);
                return true;
            }
        }
        let armed = self.poll_trip.load(Ordering::Relaxed);
        if armed > 0 {
            if armed == 1 {
                self.flag.store(true, Ordering::Relaxed);
                return true;
            }
            self.poll_trip.store(armed - 1, Ordering::Relaxed);
        }
        false
    }
}

/// Reusable scratch buffers for single- and multi-layer peeling.
///
/// Buffers grow monotonically and are never shrunk, so a workspace reused
/// across calls of the same shape performs no allocation. A workspace is
/// cheap to create (`new` allocates nothing) and is intentionally `!Sync`:
/// parallel callers create one workspace per worker thread.
#[derive(Debug, Default)]
pub struct PeelWorkspace {
    /// Flat `|L|·n` per-layer degree counters (`degrees[j*n + v]`).
    degrees: Vec<u32>,
    /// Removal queue of the cascade.
    queue: Vec<Vertex>,
    /// Epoch-stamped queued marks (`queued[v] == epoch` ⇔ v was enqueued
    /// this cascade); bumping the epoch resets all marks in O(1), so a
    /// cascade touches no per-vertex state outside the candidate set.
    queued: Vec<u32>,
    /// Current queued-mark epoch.
    epoch: u32,
    /// Bin-sort scratch: per-vertex current degree.
    bin_degree: Vec<u32>,
    /// Bin-sort scratch: bin start offsets.
    bins: Vec<usize>,
    /// Bin-sort scratch: running cursor per bin.
    starts: Vec<usize>,
    /// Bin-sort scratch: position of each vertex in `order`.
    positions: Vec<usize>,
    /// Bin-sort scratch: vertices sorted by current degree.
    order: Vec<Vertex>,
    /// Bin-sort scratch: removal marks.
    removed: Vec<bool>,
    /// Word-batched dense cascade scratch: the current frontier's victims
    /// as an `⌈m/64⌉`-word removal mask.
    removal_words: Vec<u64>,
    /// Word-batched dense cascade scratch: indices of the non-zero words of
    /// `removal_words`.
    removal_nz: Vec<u32>,
    /// Cooperative cancellation probe polled once per cascade frontier;
    /// `None` (the default) keeps the cascades check-free apart from one
    /// branch per frontier.
    probe: Option<Arc<CancelProbe>>,
}

/// Cost-model factor of the dense cascade's frontier batching: a whole
/// frontier of removals is applied as word masks against every surviving
/// row (cost `|alive| · nz` word ops per layer) when that undercuts the
/// per-victim walk (`batch · W` row-scan words per layer, plus one scalar
/// decrement per surviving edge — approximated by counting each scanned
/// word twice). Pure function of the four counts, so the chosen path —
/// and therefore the cascade, which is confluent either way — never
/// depends on scheduling.
const CASCADE_BATCH_CROSSOVER: usize = 2;

impl PeelWorkspace {
    /// An empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        PeelWorkspace::default()
    }

    /// A workspace pre-sized for graphs with `n` vertices and peels over up
    /// to `layers` layers, so even the first call allocates nothing.
    pub fn with_capacity(n: usize, layers: usize) -> Self {
        let mut ws = PeelWorkspace::default();
        ws.reserve_multi(n, layers.max(1));
        ws
    }

    /// Installs (or removes, with `None`) the cancellation probe polled by
    /// the cascade loops. Callers installing a probe for one job must clear
    /// it afterwards — a stale probe would cancel unrelated later peels on
    /// the same workspace.
    ///
    /// When a probe trips mid-cascade the peel returns early and the alive
    /// set is a **superset** of the true core; the caller is responsible
    /// for treating such a result as incomplete (the search layer checks
    /// its query monitor right after every peel).
    pub fn set_probe(&mut self, probe: Option<Arc<CancelProbe>>) {
        self.probe = probe;
    }

    fn reserve_multi(&mut self, n: usize, layers: usize) {
        if self.degrees.len() < layers * n {
            self.degrees.resize(layers * n, 0);
        }
        if self.queued.len() < n {
            self.queued.resize(n, 0);
        }
        // reserve() takes the *additional* capacity on top of len (0 here),
        // so this guarantees capacity ≥ n — no reallocation mid-cascade.
        self.queue.reserve(n.saturating_sub(self.queue.len()));
    }

    /// Starts a fresh cascade epoch; returns the mark value for this run.
    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.queued.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }

    /// Multi-layer `dCC` peel (Appendix B), in place and allocation-free in
    /// steady state.
    ///
    /// On return, `alive` is `C_L^d(G[alive])`: the maximal subset of the
    /// input set whose members have at least `d` neighbors inside it on
    /// every layer of `layers`.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty, contains an out-of-range index, or
    /// `alive` is not over the graph's vertex universe.
    pub fn peel_in_place(
        &mut self,
        g: &MultiLayerGraph,
        layers: &[Layer],
        d: u32,
        alive: &mut VertexSet,
    ) {
        assert!(!layers.is_empty(), "d_coherent_core requires a non-empty layer set");
        for &i in layers {
            assert!(i < g.num_layers(), "layer {i} out of range ({} layers)", g.num_layers());
        }
        let n = g.num_vertices();
        assert_eq!(alive.capacity(), n, "candidate set must cover the vertex universe");
        if d == 0 || alive.is_empty() {
            return;
        }
        self.reserve_multi(n, layers.len());
        let epoch = self.next_epoch();
        let degrees = &mut self.degrees[..layers.len() * n];

        // degrees[j*n + v] = degree of v on layers[j] restricted to `alive`.
        for (j, &i) in layers.iter().enumerate() {
            let csr = g.layer(i);
            let deg = &mut degrees[j * n..(j + 1) * n];
            for v in alive.iter() {
                deg[v as usize] = csr.degree_within(v, alive) as u32;
            }
        }

        run_cascade(
            g,
            layers,
            d,
            alive,
            degrees,
            &mut self.queue,
            &mut self.queued[..n],
            epoch,
            self.probe.as_deref(),
        );
    }

    /// Runs only the cascading removal phase of the multi-layer peel, over
    /// caller-owned degree arrays laid out as `degrees[j*n + v]`.
    ///
    /// `degrees` must hold, for every member of `alive`, its exact degree
    /// inside `alive` on each layer of `layers`; on return the arrays are
    /// updated to the peeled set, so callers chaining peels down the subset
    /// lattice can reuse them incrementally instead of rescanning every
    /// layer. Only the queue and queued-flag scratch is borrowed from the
    /// workspace.
    pub fn cascade_in_place(
        &mut self,
        g: &MultiLayerGraph,
        layers: &[Layer],
        d: u32,
        alive: &mut VertexSet,
        degrees: &mut [u32],
    ) {
        assert!(!layers.is_empty(), "cascade_in_place requires a non-empty layer set");
        let n = g.num_vertices();
        assert_eq!(alive.capacity(), n, "candidate set must cover the vertex universe");
        assert!(degrees.len() >= layers.len() * n, "degree arrays too small for |L|·n");
        if d == 0 || alive.is_empty() {
            return;
        }
        self.reserve_multi(n, 1);
        let epoch = self.next_epoch();
        run_cascade(
            g,
            layers,
            d,
            alive,
            degrees,
            &mut self.queue,
            &mut self.queued[..n],
            epoch,
            self.probe.as_deref(),
        );
    }

    /// Single-layer d-core threshold peel, in place. Equivalent to
    /// intersecting with [`crate::d_core_within`] but allocation-free in
    /// steady state.
    pub fn peel_layer_in_place(&mut self, g: &Csr, d: u32, alive: &mut VertexSet) {
        let n = g.num_vertices();
        assert_eq!(alive.capacity(), n, "candidate set must cover the vertex universe");
        if d == 0 || alive.is_empty() {
            return;
        }
        self.reserve_multi(n, 1);
        let epoch = self.next_epoch();
        let probe = self.probe.as_deref();
        let degrees = &mut self.degrees[..n];
        let queued = &mut self.queued[..n];
        let queue = &mut self.queue;
        queue.clear();
        for v in alive.iter() {
            let deg = g.degree_within(v, alive) as u32;
            degrees[v as usize] = deg;
            if deg < d {
                queue.push(v);
                queued[v as usize] = epoch;
            }
        }
        let mut ticks = 0usize;
        while let Some(v) = queue.pop() {
            // Cooperative cancellation: poll every PROBE_STRIDE removals,
            // never per edge. An early return leaves `alive` a superset.
            ticks += 1;
            if ticks.is_multiple_of(PROBE_STRIDE) && probe.is_some_and(CancelProbe::is_hit) {
                return;
            }
            if !alive.remove(v) {
                continue;
            }
            for &u in g.neighbors(v) {
                if !alive.contains(u) {
                    continue;
                }
                let du = &mut degrees[u as usize];
                *du = du.saturating_sub(1);
                if *du < d && queued[u as usize] != epoch {
                    queued[u as usize] = epoch;
                    queue.push(u);
                }
            }
        }
    }

    /// The cascading removal phase over a [`DenseSubgraph`]: `alive` and
    /// `degrees` live in the re-indexed universe `0..m`, neighborhoods are
    /// iterated as `row ∧ alive` words, and `degrees[j*m + v]` must hold the
    /// exact within-`alive` degree of every member on `layers[j]` (kept
    /// exact through the cascade). Queue scratch is borrowed from the
    /// workspace; nothing is allocated in steady state.
    ///
    /// The cascade drains the removal queue **one whole frontier at a
    /// time**: the queued victims are grouped into 64-bit removal words,
    /// removed from `alive` together, and — when the frontier is wide
    /// enough ([`CASCADE_BATCH_CROSSOVER`]) — each non-zero removal word is
    /// applied against every surviving row as a word-AND + popcount, so a
    /// survivor's degree drops by `|row ∧ removed|` in a handful of word
    /// ops instead of one scalar decrement per lost edge. Narrow frontiers
    /// keep the per-victim `row ∧ alive` walk. Peeling is confluent, so
    /// both paths — and any batching of the removal order — produce the
    /// same final set and the same surviving degrees.
    ///
    /// `layers` are original layer indices into the dense subgraph's layer
    /// axis.
    pub fn cascade_dense(
        &mut self,
        dense: &DenseSubgraph,
        layers: &[Layer],
        d: u32,
        alive: &mut VertexSet,
        degrees: &mut [u32],
    ) {
        assert!(!layers.is_empty(), "cascade_dense requires a non-empty layer set");
        let m = dense.len();
        assert_eq!(alive.capacity(), m, "alive set must be over the dense universe");
        assert!(degrees.len() >= layers.len() * m, "degree arrays too small for |L|·m");
        if d == 0 || alive.is_empty() {
            return;
        }
        self.reserve_multi(m, 1);
        let epoch = self.next_epoch();
        let probe = self.probe.as_deref();
        let wpr = dense.words_per_row();
        let queue = &mut self.queue;
        let queued = &mut self.queued[..m];
        let removal = &mut self.removal_words;
        let nz = &mut self.removal_nz;
        queue.clear();
        removal.clear();
        removal.resize(wpr, 0);
        for v in alive.iter() {
            let vi = v as usize;
            if (0..layers.len()).any(|j| degrees[j * m + vi] < d) {
                queue.push(v);
                queued[vi] = epoch;
            }
        }
        let kernel = mlgraph::kernels::kernel();
        while !queue.is_empty() {
            // Cooperative cancellation: polled once per removal frontier —
            // the coarsest boundary inside a peel — so the word loops below
            // stay check-free. An early return leaves `alive` a superset.
            if probe.is_some_and(CancelProbe::is_hit) {
                return;
            }
            // Drain the whole frontier into word-grouped removal masks.
            removal[..wpr].fill(0);
            let mut batch = 0usize;
            for v in queue.drain(..) {
                if alive.remove(v) {
                    removal[v as usize / 64] |= 1u64 << (v % 64);
                    batch += 1;
                }
            }
            if batch == 0 {
                continue;
            }
            nz.clear();
            for (w, &word) in removal[..wpr].iter().enumerate() {
                if word != 0 {
                    nz.push(w as u32);
                }
            }
            if alive.len() * nz.len() <= CASCADE_BATCH_CROSSOVER * batch * wpr {
                // Word-batched: subtract `|row ∧ removed|` from every
                // surviving row, scanning only the non-zero removal words.
                for (j, &layer) in layers.iter().enumerate() {
                    for u in alive.iter() {
                        let row = dense.row(layer, u);
                        let delta = if nz.len() == wpr {
                            kernel.and_count(row, &removal[..wpr]) as u32
                        } else {
                            let mut delta = 0u32;
                            for &w in nz.iter() {
                                delta += (row[w as usize] & removal[w as usize]).count_ones();
                            }
                            delta
                        };
                        if delta != 0 {
                            let du = &mut degrees[j * m + u as usize];
                            *du = du.saturating_sub(delta);
                            if *du < d && queued[u as usize] != epoch {
                                queued[u as usize] = epoch;
                                queue.push(u);
                            }
                        }
                    }
                }
            } else {
                // Narrow frontier: walk each victim's surviving neighbors.
                for &w in nz.iter() {
                    let mut bits = removal[w as usize];
                    while bits != 0 {
                        let v = (w as usize * 64 + bits.trailing_zeros() as usize) as Vertex;
                        bits &= bits - 1;
                        for (j, &layer) in layers.iter().enumerate() {
                            let row = dense.row(layer, v);
                            for (wi, (&r, &a)) in row.iter().zip(alive.words().iter()).enumerate() {
                                let mut nb = r & a;
                                while nb != 0 {
                                    let u = (wi * 64 + nb.trailing_zeros() as usize) as Vertex;
                                    nb &= nb - 1;
                                    let du = &mut degrees[j * m + u as usize];
                                    *du = du.saturating_sub(1);
                                    if *du < d && queued[u as usize] != epoch {
                                        queued[u as usize] = epoch;
                                        queue.push(u);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// The cascading removal phase over a [`CompressedSubgraph`]: `alive`
    /// and `degrees` live in the re-indexed universe `0..m` (the alive set
    /// stays a flat [`VertexSet`] — at `m` bits it is cheap even when the
    /// adjacency rows are not), neighborhoods are walked as `row ∧ alive`
    /// over the row's occupied blocks, and `degrees[j*m + v]` must hold the
    /// exact within-`alive` degree of every member on `layers[j]` (kept
    /// exact through the cascade).
    ///
    /// Removals are per-victim LIFO like the CSR cascade — a compressed row
    /// only materializes its occupied blocks, so the frontier-batched
    /// row-subtraction of [`PeelWorkspace::cascade_dense`] has no flat rows
    /// to subtract from. Peeling is confluent, so the result is bit-
    /// identical to both other cascades.
    ///
    /// `layers` are original layer indices into the subgraph's layer axis.
    pub fn cascade_compressed(
        &mut self,
        sub: &CompressedSubgraph,
        layers: &[Layer],
        d: u32,
        alive: &mut VertexSet,
        degrees: &mut [u32],
    ) {
        assert!(!layers.is_empty(), "cascade_compressed requires a non-empty layer set");
        let m = sub.len();
        assert_eq!(alive.capacity(), m, "alive set must be over the compressed universe");
        assert!(degrees.len() >= layers.len() * m, "degree arrays too small for |L|·m");
        if d == 0 || alive.is_empty() {
            return;
        }
        self.reserve_multi(m, 1);
        let epoch = self.next_epoch();
        let probe = self.probe.as_deref();
        let queue = &mut self.queue;
        let queued = &mut self.queued[..m];
        queue.clear();
        for v in alive.iter() {
            let vi = v as usize;
            if (0..layers.len()).any(|j| degrees[j * m + vi] < d) {
                queue.push(v);
                queued[vi] = epoch;
            }
        }
        let mut ticks = 0usize;
        while let Some(v) = queue.pop() {
            // Cooperative cancellation: poll every PROBE_STRIDE removals,
            // never inside the block walks. An early return leaves `alive`
            // a superset.
            ticks += 1;
            if ticks.is_multiple_of(PROBE_STRIDE) && probe.is_some_and(CancelProbe::is_hit) {
                return;
            }
            if !alive.remove(v) {
                continue;
            }
            for (j, &layer) in layers.iter().enumerate() {
                sub.row(layer, v).for_each_in(alive.words(), |u| {
                    let du = &mut degrees[j * m + u as usize];
                    *du = du.saturating_sub(1);
                    if *du < d && queued[u as usize] != epoch {
                        queued[u as usize] = epoch;
                        queue.push(u);
                    }
                });
            }
        }
    }

    /// Approximate heap bytes currently held by this workspace's scratch
    /// buffers — dominated by the `|L|·n` degree counters. This is the
    /// per-worker peel memory the large-scale bench records.
    pub fn scratch_bytes(&self) -> usize {
        self.degrees.capacity() * 4
            + self.queue.capacity() * 4
            + self.queued.capacity() * 4
            + self.bin_degree.capacity() * 4
            + self.bins.capacity() * 8
            + self.starts.capacity() * 8
            + self.positions.capacity() * 8
            + self.order.capacity() * 4
            + self.removed.capacity()
            + self.removal_words.capacity() * 8
            + self.removal_nz.capacity() * 4
    }

    /// Batagelj–Zaversnik bin-sort core decomposition of `g[within]`,
    /// written into `core` (resized to `n`; vertices outside `within` get 0).
    /// All intermediate buffers are borrowed from the workspace.
    pub fn core_numbers_into(&mut self, g: &Csr, within: &VertexSet, core: &mut Vec<u32>) {
        let n = g.num_vertices();
        core.clear();
        core.resize(n, 0);
        if within.is_empty() {
            return;
        }
        self.reserve_multi(n, 1);
        if self.positions.len() < n {
            self.positions.resize(n, usize::MAX);
        }
        if self.removed.len() < n {
            self.removed.resize(n, false);
        }
        if self.bin_degree.len() < n {
            self.bin_degree.resize(n, 0);
        }
        let degree = &mut self.bin_degree[..n];
        let positions = &mut self.positions[..n];
        let removed = &mut self.removed[..n];
        removed[..n].fill(false);

        let mut max_degree = 0u32;
        for v in within.iter() {
            let d = g.degree_within(v, within) as u32;
            degree[v as usize] = d;
            max_degree = max_degree.max(d);
        }

        // bins[d] = starting index in `order` of vertices with degree d.
        let bins_len = max_degree as usize + 2;
        self.bins.clear();
        self.bins.resize(bins_len, 0);
        for v in within.iter() {
            self.bins[degree[v as usize] as usize + 1] += 1;
        }
        for d in 1..bins_len {
            self.bins[d] += self.bins[d - 1];
        }
        self.starts.clear();
        self.starts.extend_from_slice(&self.bins);

        let active = within.len();
        self.order.clear();
        self.order.resize(active, 0);
        for v in within.iter() {
            let d = degree[v as usize] as usize;
            positions[v as usize] = self.starts[d];
            self.order[self.starts[d]] = v;
            self.starts[d] += 1;
        }

        let bins = &mut self.bins;
        let order = &mut self.order;
        for i in 0..active {
            let v = order[i];
            let dv = degree[v as usize];
            core[v as usize] = dv;
            removed[v as usize] = true;
            for &u in g.neighbors(v) {
                if !within.contains(u) || removed[u as usize] {
                    continue;
                }
                let du = degree[u as usize];
                if du > dv {
                    // Move u to the front of its bin, then shift it one bin down.
                    let du = du as usize;
                    let pu = positions[u as usize];
                    let pw = bins[du];
                    let w = order[pw];
                    if u != w {
                        order.swap(pu, pw);
                        positions[u as usize] = pw;
                        positions[w as usize] = pu;
                    }
                    bins[du] += 1;
                    degree[u as usize] -= 1;
                }
            }
        }
    }

    /// Incrementally repairs a single-layer d-core after an edge delta,
    /// writing the d-core of the **new** layer into `out` without touching
    /// vertices far from the change.
    ///
    /// `layer` is the layer *after* the delta, `old_core` the exact d-core
    /// of the layer before it, and `inserted` the canonical edges added by
    /// the delta (deleted edges need not be listed: deletions only shrink
    /// the core, which the re-peel below discovers on its own). The repair
    /// peels within `old_core ∪ R`, where `R` is the set of vertices outside
    /// the old core reachable from an inserted edge's endpoints through
    /// non-core vertices: any connected chunk of the new d-core outside
    /// `old_core` that avoided `R` entirely would use only pre-existing
    /// edges, so together with `old_core` it would have been a d-dense set
    /// of the old layer — contradicting the old core's maximality. The work
    /// is therefore bounded by the old core plus the insertion-affected
    /// region, not the layer.
    pub fn repair_d_core(
        &mut self,
        layer: &Csr,
        d: u32,
        old_core: &VertexSet,
        inserted: &[(Vertex, Vertex)],
        out: &mut VertexSet,
    ) {
        let n = layer.num_vertices();
        assert_eq!(old_core.capacity(), n, "old core must cover the vertex universe");
        if d == 0 {
            // The 0-core is always the full universe.
            *out = VertexSet::full(n);
            return;
        }
        if out.capacity() != n {
            *out = old_core.clone();
        } else {
            out.copy_from(old_core);
        }
        if !inserted.is_empty() {
            // Grow the candidate set by the insertion-affected region R.
            self.reserve_multi(n, 1);
            let epoch = self.next_epoch();
            let queued = &mut self.queued[..n];
            let queue = &mut self.queue;
            queue.clear();
            for &(u, v) in inserted {
                for w in [u, v] {
                    if !old_core.contains(w) && queued[w as usize] != epoch {
                        queued[w as usize] = epoch;
                        queue.push(w);
                        out.insert(w);
                    }
                }
            }
            while let Some(w) = queue.pop() {
                for &x in layer.neighbors(w) {
                    if !old_core.contains(x) && queued[x as usize] != epoch {
                        queued[x as usize] = epoch;
                        queue.push(x);
                        out.insert(x);
                    }
                }
            }
        }
        self.peel_layer_in_place(layer, d, out);
    }

    /// Incrementally repairs per-vertex core numbers after an edge delta.
    ///
    /// `g` is the layer *after* the delta; `core` holds the exact core
    /// numbers of the layer before it and is repaired in place. Runs in two
    /// phases over the delta, never re-peeling the whole layer:
    ///
    /// 1. **Deletions** — a worklist iteration of the capped h-operator
    ///    (`c(v) ← min(c(v), h-index of neighbor values)`) on the graph
    ///    without the inserted edges, seeded from the deleted endpoints.
    ///    Old core numbers are a pointwise upper bound there, the operator
    ///    is monotone, every fixpoint below an upper bound is below the
    ///    true core numbers, and core numbers themselves are a fixpoint —
    ///    so the worklist converges exactly, touching only vertices whose
    ///    value actually changes (plus their neighborhoods).
    /// 2. **Insertions** — the classical per-edge subcore traversal: for an
    ///    edge with endpoint cores ≥ `K = min` of the two, only vertices
    ///    with core exactly `K` reachable from the min-core endpoints
    ///    through core-`K` vertices can rise (by at most 1); candidates
    ///    whose qualified degree cannot reach `K + 1` are evicted with a
    ///    cascade, survivors are promoted.
    ///
    /// Edges in `inserted`/`deleted` must be canonical, deduplicated,
    /// disjoint, and effective, as produced by `mlgraph`'s batch commit.
    pub fn repair_core_numbers(
        &mut self,
        g: &Csr,
        inserted: &[(Vertex, Vertex)],
        deleted: &[(Vertex, Vertex)],
        core: &mut [u32],
    ) {
        let n = g.num_vertices();
        assert_eq!(core.len(), n, "core numbers must cover the vertex universe");
        // Inserted edges not yet applied; phase 1 runs on the new layer with
        // all of them masked out, phase 2 unmasks them one at a time.
        let mut pending: std::collections::HashSet<(Vertex, Vertex)> =
            inserted.iter().copied().collect();
        let canon = |a: Vertex, b: Vertex| if a < b { (a, b) } else { (b, a) };
        self.reserve_multi(n, 1);
        if self.removed.len() < n {
            self.removed.resize(n, false);
        }
        self.removed[..n].fill(false);

        if !deleted.is_empty() {
            // Phase 1: `removed` doubles as the in-queue flag.
            let in_queue = &mut self.removed[..n];
            let queue = &mut self.queue;
            queue.clear();
            for &(u, v) in deleted {
                for w in [u, v] {
                    if !in_queue[w as usize] {
                        in_queue[w as usize] = true;
                        queue.push(w);
                    }
                }
            }
            while let Some(v) = queue.pop() {
                in_queue[v as usize] = false;
                let c = core[v as usize] as usize;
                if c == 0 {
                    continue;
                }
                // h = max h ≤ c with #{u ∈ N(v) : core(u) ≥ h} ≥ h, via a
                // count of neighbor values clamped to c.
                self.bins.clear();
                self.bins.resize(c + 1, 0);
                for &u in g.neighbors(v) {
                    if pending.contains(&canon(v, u)) {
                        continue;
                    }
                    self.bins[(core[u as usize] as usize).min(c)] += 1;
                }
                let mut h = c;
                let mut cum = 0usize;
                while h > 0 {
                    cum += self.bins[h];
                    if cum >= h {
                        break;
                    }
                    h -= 1;
                }
                if h < c {
                    core[v as usize] = h as u32;
                    for &u in g.neighbors(v) {
                        if pending.contains(&canon(v, u)) {
                            continue;
                        }
                        if core[u as usize] > h as u32 && !in_queue[u as usize] {
                            in_queue[u as usize] = true;
                            queue.push(u);
                        }
                    }
                }
            }
        }

        for &(eu, ev) in inserted {
            pending.remove(&(eu, ev));
            let k = core[eu as usize].min(core[ev as usize]);
            // Collect the candidate subcore S: core-k vertices reachable
            // from the min-core endpoint(s) through core-k vertices.
            let epoch = self.next_epoch();
            let queued = &mut self.queued[..n];
            let queue = &mut self.queue;
            queue.clear();
            self.order.clear();
            for w in [eu, ev] {
                if core[w as usize] == k && queued[w as usize] != epoch {
                    queued[w as usize] = epoch;
                    queue.push(w);
                }
            }
            while let Some(w) = queue.pop() {
                self.order.push(w);
                for &x in g.neighbors(w) {
                    if pending.contains(&canon(w, x)) {
                        continue;
                    }
                    if core[x as usize] == k && queued[x as usize] != epoch {
                        queued[x as usize] = epoch;
                        queue.push(x);
                    }
                }
            }
            // Qualified degree: neighbors that could support core k + 1.
            if self.bin_degree.len() < n {
                self.bin_degree.resize(n, 0);
            }
            for &w in &self.order {
                let mut cd = 0u32;
                for &x in g.neighbors(w) {
                    if pending.contains(&canon(w, x)) {
                        continue;
                    }
                    let cx = core[x as usize];
                    if cx > k || (cx == k && queued[x as usize] == epoch) {
                        cd += 1;
                    }
                }
                self.bin_degree[w as usize] = cd;
            }
            // Evict candidates that cannot reach k + 1, cascading.
            let evicted = &mut self.removed[..n];
            queue.clear();
            for &w in &self.order {
                if self.bin_degree[w as usize] <= k {
                    evicted[w as usize] = true;
                    queue.push(w);
                }
            }
            while let Some(w) = queue.pop() {
                for &x in g.neighbors(w) {
                    if pending.contains(&canon(w, x)) {
                        continue;
                    }
                    if core[x as usize] == k && queued[x as usize] == epoch && !evicted[x as usize]
                    {
                        let cd = &mut self.bin_degree[x as usize];
                        *cd -= 1;
                        if *cd <= k {
                            evicted[x as usize] = true;
                            queue.push(x);
                        }
                    }
                }
            }
            for &w in &self.order {
                if !evicted[w as usize] {
                    core[w as usize] = k + 1;
                }
                evicted[w as usize] = false;
            }
        }
    }
}

/// How many removals a CSR cascade performs between cancellation-probe
/// polls: coarse enough that the poll (one relaxed load, occasionally a
/// clock read) never shows up next to the per-edge work, fine enough that a
/// deadline is honored within a few thousand edge updates.
const PROBE_STRIDE: usize = 128;

/// The cascading removal phase shared by [`PeelWorkspace::peel_in_place`]
/// and [`PeelWorkspace::cascade_in_place`]: seeds the queue with every
/// member of `alive` violating the threshold, then cascades removals while
/// keeping `degrees` exact within the shrinking set. `queued` marks use the
/// given epoch value, so no O(n) reset is ever performed. A tripped `probe`
/// aborts the cascade early (polled every [`PROBE_STRIDE`] removals),
/// leaving `alive` a superset of the true core.
#[allow(clippy::too_many_arguments)]
fn run_cascade(
    g: &MultiLayerGraph,
    layers: &[Layer],
    d: u32,
    alive: &mut VertexSet,
    degrees: &mut [u32],
    queue: &mut Vec<Vertex>,
    queued: &mut [u32],
    epoch: u32,
    probe: Option<&CancelProbe>,
) {
    let n = g.num_vertices();
    queue.clear();
    for v in alive.iter() {
        let vi = v as usize;
        if (0..layers.len()).any(|j| degrees[j * n + vi] < d) {
            queue.push(v);
            queued[vi] = epoch;
        }
    }
    let mut ticks = 0usize;
    while let Some(v) = queue.pop() {
        ticks += 1;
        if ticks.is_multiple_of(PROBE_STRIDE) && probe.is_some_and(CancelProbe::is_hit) {
            return;
        }
        if !alive.remove(v) {
            continue;
        }
        for (j, &i) in layers.iter().enumerate() {
            let csr = g.layer(i);
            for &u in csr.neighbors(v) {
                if !alive.contains(u) {
                    continue;
                }
                let du = &mut degrees[j * n + u as usize];
                *du = du.saturating_sub(1);
                if *du < d && queued[u as usize] != epoch {
                    queued[u as usize] = epoch;
                    queue.push(u);
                }
            }
        }
    }
}

thread_local! {
    static THREAD_WORKSPACE: RefCell<PeelWorkspace> = RefCell::new(PeelWorkspace::new());
}

/// Runs `f` with this thread's shared [`PeelWorkspace`].
///
/// The historical allocating entry points (`d_coherent_core`, `d_core`, …)
/// route through this, so repeated calls reuse one per-thread scratch
/// allocation. `f` must not re-enter another workspace-borrowing entry point
/// (it would panic on the nested `RefCell` borrow); callers composing peels
/// should own an explicit `PeelWorkspace` instead.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut PeelWorkspace) -> R) -> R {
    THREAD_WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgraph::MultiLayerGraphBuilder;

    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(7, 2);
        for (u, v) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)] {
            b.add_edge(0, u, v).unwrap();
        }
        for (u, v) in [(0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (4, 5), (5, 6), (4, 6)] {
            b.add_edge(1, u, v).unwrap();
        }
        b.build()
    }

    #[test]
    fn peel_matches_allocating_reference() {
        let g = graph();
        let mut ws = PeelWorkspace::new();
        for d in 0..=4u32 {
            for layers in [vec![0usize], vec![1], vec![0, 1]] {
                let mut alive = g.full_vertex_set();
                ws.peel_in_place(&g, &layers, d, &mut alive);
                let reference =
                    crate::dcc::d_coherent_core_naive(&g, &layers, d, &g.full_vertex_set());
                assert_eq!(alive.to_vec(), reference.to_vec(), "d={d} layers={layers:?}");
            }
        }
    }

    #[test]
    fn workspace_reuse_across_shapes_is_sound() {
        let g = graph();
        let mut ws = PeelWorkspace::new();
        // Interleave different layer counts and thresholds; stale buffer
        // contents must never leak between calls.
        for (layers, d) in
            [(vec![0usize, 1], 2u32), (vec![0], 3), (vec![0, 1], 3), (vec![1], 2), (vec![0, 1], 2)]
        {
            let mut alive = g.full_vertex_set();
            ws.peel_in_place(&g, &layers, d, &mut alive);
            let reference = crate::dcc::d_coherent_core_naive(&g, &layers, d, &g.full_vertex_set());
            assert_eq!(alive.to_vec(), reference.to_vec(), "d={d} layers={layers:?}");
        }
    }

    #[test]
    fn single_layer_peel_matches_d_core() {
        let g = graph();
        let mut ws = PeelWorkspace::new();
        for d in 0..=4u32 {
            let mut alive = g.full_vertex_set();
            ws.peel_layer_in_place(g.layer(0), d, &mut alive);
            assert_eq!(alive.to_vec(), crate::peel::d_core(g.layer(0), d).to_vec(), "d={d}");
        }
    }

    #[test]
    fn core_numbers_into_matches_free_function() {
        let g = graph();
        let mut ws = PeelWorkspace::new();
        let mut core = Vec::new();
        let all = g.full_vertex_set();
        ws.core_numbers_into(g.layer(0), &all, &mut core);
        assert_eq!(core, crate::peel::core_numbers(g.layer(0)));
        // Reuse with a restricted set.
        let within = VertexSet::from_iter(7, [0, 1, 2, 4, 5, 6]);
        ws.core_numbers_into(g.layer(1), &within, &mut core);
        assert_eq!(core, crate::peel::core_numbers_within(g.layer(1), &within));
    }

    /// The word-batched dense cascade must peel to exactly the naive d-CC —
    /// on shapes wide enough to take the batched frontier path (a large
    /// near-complete graph whose first frontier removes many vertices at
    /// once) and on shapes that stay on the per-victim path.
    #[test]
    fn word_batched_dense_cascade_matches_naive() {
        // 150 vertices, 2 layers: a dense clique core {0..100} plus a
        // sparse fringe 100..150 that cascades away in wide frontiers.
        let n = 150usize;
        let mut b = MultiLayerGraphBuilder::new(n, 2);
        for layer in 0..2 {
            for u in 0..100u32 {
                for v in (u + 1)..100 {
                    b.add_edge(layer, u, v).unwrap();
                }
            }
            for v in 100..n as u32 {
                b.add_edge(layer, v, v - 100).unwrap();
                b.add_edge(layer, v, (v - 100 + 1) % 100).unwrap();
            }
        }
        let g = b.build();
        let universe = g.full_vertex_set();
        let dense = DenseSubgraph::build(&g, &universe);
        let mut ws = PeelWorkspace::new();
        for (layers, d) in
            [(vec![0usize], 3u32), (vec![0, 1], 3), (vec![0, 1], 50), (vec![0, 1], 99)]
        {
            let mut alive = VertexSet::full(n);
            let mut degrees = vec![0u32; layers.len() * n];
            for (j, &layer) in layers.iter().enumerate() {
                for v in alive.iter() {
                    degrees[j * n + v as usize] = dense.degree_within(layer, v, &alive) as u32;
                }
            }
            ws.cascade_dense(&dense, &layers, d, &mut alive, &mut degrees);
            let reference = crate::dcc::d_coherent_core_naive(&g, &layers, d, &universe);
            assert_eq!(alive.to_vec(), reference.to_vec(), "layers={layers:?} d={d}");
            // Surviving degrees must stay exact.
            for (j, &layer) in layers.iter().enumerate() {
                for v in alive.iter() {
                    assert_eq!(
                        degrees[j * n + v as usize] as usize,
                        dense.degree_within(layer, v, &alive),
                        "stale degree for v={v} layer={layer} d={d}"
                    );
                }
            }
        }
    }

    /// The compressed cascade must peel to exactly the naive d-CC — on the
    /// same shapes as the dense oracle test, so all three cascades are held
    /// to one reference.
    #[test]
    fn compressed_cascade_matches_naive() {
        let n = 150usize;
        let mut b = MultiLayerGraphBuilder::new(n, 2);
        for layer in 0..2 {
            for u in 0..100u32 {
                for v in (u + 1)..100 {
                    b.add_edge(layer, u, v).unwrap();
                }
            }
            for v in 100..n as u32 {
                b.add_edge(layer, v, v - 100).unwrap();
                b.add_edge(layer, v, (v - 100 + 1) % 100).unwrap();
            }
        }
        let g = b.build();
        let universe = g.full_vertex_set();
        let sub = CompressedSubgraph::build(&g, &universe);
        let mut ws = PeelWorkspace::new();
        for (layers, d) in
            [(vec![0usize], 3u32), (vec![0, 1], 3), (vec![0, 1], 50), (vec![0, 1], 99)]
        {
            let mut alive = VertexSet::full(n);
            let mut degrees = vec![0u32; layers.len() * n];
            for (j, &layer) in layers.iter().enumerate() {
                for v in alive.iter() {
                    degrees[j * n + v as usize] = sub.degree_within(layer, v, &alive) as u32;
                }
            }
            ws.cascade_compressed(&sub, &layers, d, &mut alive, &mut degrees);
            let reference = crate::dcc::d_coherent_core_naive(&g, &layers, d, &universe);
            assert_eq!(alive.to_vec(), reference.to_vec(), "layers={layers:?} d={d}");
            for (j, &layer) in layers.iter().enumerate() {
                for v in alive.iter() {
                    assert_eq!(
                        degrees[j * n + v as usize] as usize,
                        sub.degree_within(layer, v, &alive),
                        "stale degree for v={v} layer={layer} d={d}"
                    );
                }
            }
        }
        assert!(ws.scratch_bytes() > 0);
    }

    /// A pre-tripped probe aborts a dense cascade at the first frontier
    /// (leaving the alive set a strict superset of the true core), and
    /// clearing the probe restores exact peeling on the same workspace.
    #[test]
    fn tripped_probe_aborts_cascades_and_clears_cleanly() {
        let n = 150usize;
        let mut b = MultiLayerGraphBuilder::new(n, 1);
        for u in 0..100u32 {
            for v in (u + 1)..100 {
                b.add_edge(0, u, v).unwrap();
            }
        }
        for v in 100..n as u32 {
            b.add_edge(0, v, v - 100).unwrap();
        }
        let g = b.build();
        let universe = g.full_vertex_set();
        let dense = DenseSubgraph::build(&g, &universe);
        let reference = crate::dcc::d_coherent_core_naive(&g, &[0], 50, &universe);
        assert_eq!(reference.len(), 100);

        let mut ws = PeelWorkspace::new();
        let probe = Arc::new(CancelProbe::new());
        probe.cancel();
        ws.set_probe(Some(Arc::clone(&probe)));
        let mut alive = VertexSet::full(n);
        let mut degrees = vec![0u32; n];
        for v in alive.iter() {
            degrees[v as usize] = dense.degree_within(0, v, &alive) as u32;
        }
        ws.cascade_dense(&dense, &[0], 50, &mut alive, &mut degrees);
        // Aborted at the first frontier: nothing was removed yet.
        assert_eq!(alive.len(), n, "tripped probe must abort before any removal");

        ws.set_probe(None);
        let mut exact = VertexSet::full(n);
        let mut degrees = vec![0u32; n];
        for v in exact.iter() {
            degrees[v as usize] = dense.degree_within(0, v, &exact) as u32;
        }
        ws.cascade_dense(&dense, &[0], 50, &mut exact, &mut degrees);
        assert_eq!(exact.to_vec(), reference.to_vec());
    }

    #[test]
    fn probe_trips_on_its_deadline() {
        let probe = CancelProbe::with_deadline(Instant::now() - std::time::Duration::from_secs(1));
        assert!(!probe.cancelled(), "deadline not yet observed");
        assert!(probe.is_hit(), "past deadline must trip the probe");
        assert!(probe.cancelled(), "the hit is latched into the flag");
        let future =
            CancelProbe::with_deadline(Instant::now() + std::time::Duration::from_secs(600));
        assert!(!future.is_hit());
        future.cancel();
        assert!(future.is_hit());
    }

    #[test]
    fn with_capacity_presizes() {
        let ws = PeelWorkspace::with_capacity(100, 4);
        assert!(ws.degrees.len() >= 400);
        assert!(ws.queued.len() >= 100);
    }

    /// Deterministic splitmix64 stream for the repair oracle tests — the
    /// crate deliberately takes no RNG dependency.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    fn random_csr(rng: &mut Lcg, n: usize, m: usize) -> Csr {
        let mut edges = Vec::with_capacity(m);
        while edges.len() < m {
            let u = rng.below(n) as Vertex;
            let v = rng.below(n) as Vertex;
            if u != v {
                edges.push((u, v));
            }
        }
        Csr::from_edges(n, &edges)
    }

    type EdgeList = Vec<(Vertex, Vertex)>;

    /// Draws an effective canonical delta against `g`: `dels` existing
    /// edges and `ins` fresh ones, disjoint by construction.
    fn random_delta(rng: &mut Lcg, g: &Csr, dels: usize, ins: usize) -> (EdgeList, EdgeList) {
        let n = g.num_vertices();
        let mut existing: Vec<(Vertex, Vertex)> = g.edges().collect();
        let mut deleted = Vec::new();
        for _ in 0..dels.min(existing.len()) {
            let i = rng.below(existing.len());
            deleted.push(existing.swap_remove(i));
        }
        let mut inserted = Vec::new();
        let mut guard = 0;
        while inserted.len() < ins && guard < ins * 100 {
            guard += 1;
            let u = rng.below(n) as Vertex;
            let v = rng.below(n) as Vertex;
            if u == v {
                continue;
            }
            let e = if u < v { (u, v) } else { (v, u) };
            if g.has_edge(e.0, e.1) && !deleted.contains(&e) {
                continue;
            }
            if deleted.contains(&e) || inserted.contains(&e) {
                continue;
            }
            inserted.push(e);
        }
        inserted.sort_unstable();
        deleted.sort_unstable();
        (inserted, deleted)
    }

    /// Incremental d-core repair must be bit-identical to a full re-peel of
    /// the mutated layer, across random graphs, deltas, and thresholds —
    /// including delete-only, insert-only, and layer-emptying deltas.
    #[test]
    fn repair_d_core_matches_full_peel() {
        let mut rng = Lcg(7);
        let mut ws = PeelWorkspace::new();
        for round in 0..30 {
            let n = 20 + rng.below(40);
            let g = random_csr(&mut rng, n, n * 2);
            let (dels, ins) = (rng.below(8), rng.below(8));
            let (inserted, deleted) = random_delta(&mut rng, &g, dels, ins);
            let next = g.rebuild_with_delta(&inserted, &deleted);
            for d in 0..=4u32 {
                let old_core = crate::peel::d_core(&g, d);
                let mut repaired = VertexSet::new(n);
                ws.repair_d_core(&next, d, &old_core, &inserted, &mut repaired);
                let oracle = crate::peel::d_core(&next, d);
                assert_eq!(
                    repaired.to_vec(),
                    oracle.to_vec(),
                    "round={round} d={d} ins={inserted:?} del={deleted:?}"
                );
            }
        }
        // Empty the layer entirely, then refill it.
        let g = random_csr(&mut rng, 12, 20);
        let all: Vec<(Vertex, Vertex)> = g.edges().collect();
        let emptied = g.rebuild_with_delta(&[], &all);
        let mut repaired = VertexSet::new(12);
        for d in 1..=3u32 {
            ws.repair_d_core(&emptied, d, &crate::peel::d_core(&g, d), &[], &mut repaired);
            assert!(repaired.is_empty(), "d-core of an empty layer must be empty");
            ws.repair_d_core(&g, d, &crate::peel::d_core(&emptied, d), &all, &mut repaired);
            assert_eq!(repaired.to_vec(), crate::peel::d_core(&g, d).to_vec(), "refill d={d}");
        }
    }

    /// Incremental core-number repair must agree with the bin-sort
    /// decomposition of the mutated layer, across random deltas and across
    /// a chain of successive deltas repaired in place.
    #[test]
    fn repair_core_numbers_matches_recompute() {
        let mut rng = Lcg(13);
        let mut ws = PeelWorkspace::new();
        for round in 0..30 {
            let n = 20 + rng.below(40);
            let g = random_csr(&mut rng, n, n * 2);
            let (dels, ins) = (rng.below(10), rng.below(10));
            let (inserted, deleted) = random_delta(&mut rng, &g, dels, ins);
            let next = g.rebuild_with_delta(&inserted, &deleted);
            let mut core = crate::peel::core_numbers(&g);
            ws.repair_core_numbers(&next, &inserted, &deleted, &mut core);
            assert_eq!(
                core,
                crate::peel::core_numbers(&next),
                "round={round} ins={inserted:?} del={deleted:?}"
            );
        }
        // Chain: repair the same vector through 10 successive deltas.
        let mut g = random_csr(&mut rng, 40, 90);
        let mut core = crate::peel::core_numbers(&g);
        for step in 0..10 {
            let (inserted, deleted) = random_delta(&mut rng, &g, 5, 5);
            let next = g.rebuild_with_delta(&inserted, &deleted);
            ws.repair_core_numbers(&next, &inserted, &deleted, &mut core);
            assert_eq!(core, crate::peel::core_numbers(&next), "chain step {step}");
            g = next;
        }
    }

    #[test]
    #[should_panic(expected = "non-empty layer set")]
    fn empty_layer_set_panics() {
        let g = graph();
        let mut alive = g.full_vertex_set();
        PeelWorkspace::new().peel_in_place(&g, &[], 1, &mut alive);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_layer_panics() {
        let g = graph();
        let mut alive = g.full_vertex_set();
        PeelWorkspace::new().peel_in_place(&g, &[9], 1, &mut alive);
    }
}
