//! Property-based tests for the core-decomposition substrate.
//!
//! Random multi-layer graphs are generated and the paper's structural
//! properties (hierarchy, containment, intersection bound, maximality) are
//! checked against brute-force or definitional oracles.

use coreness::{
    core_numbers, d_coherent_core, d_coherent_core_in, d_coherent_core_naive, d_core, is_d_dense,
    is_d_dense_multilayer, PeelWorkspace,
};
use mlgraph::{Csr, MultiLayerGraph, Vertex, VertexSet};
use proptest::prelude::*;

/// Strategy: a random edge list over `n` vertices.
fn edges_strategy(n: usize, max_edges: usize) -> impl Strategy<Value = Vec<(Vertex, Vertex)>> {
    prop::collection::vec((0..n as Vertex, 0..n as Vertex), 0..max_edges)
}

fn multilayer_strategy(
    n: usize,
    layers: usize,
    max_edges: usize,
) -> impl Strategy<Value = MultiLayerGraph> {
    prop::collection::vec(edges_strategy(n, max_edges), layers..=layers).prop_map(move |lists| {
        let cleaned: Vec<Vec<(Vertex, Vertex)>> = lists
            .into_iter()
            .map(|edges| edges.into_iter().filter(|(u, v)| u != v).collect())
            .collect();
        MultiLayerGraph::from_edge_lists(n, &cleaned).unwrap()
    })
}

/// Brute-force d-core: repeatedly delete any vertex with degree < d.
fn naive_d_core(g: &Csr, d: u32) -> VertexSet {
    let mut alive = VertexSet::full(g.num_vertices());
    loop {
        let victim = alive.iter().find(|&v| g.degree_within(v, &alive) < d as usize);
        match victim {
            Some(v) => {
                alive.remove(v);
            }
            None => return alive,
        }
    }
}

/// Definitional from-scratch multi-layer peel: repeatedly delete any
/// candidate whose degree inside the survivors drops below `d` on some
/// layer. Quadratic, independent of both the workspace engine and the
/// allocating reference implementation.
fn definitional_dcc(
    g: &MultiLayerGraph,
    layers: &[usize],
    d: u32,
    candidates: &VertexSet,
) -> VertexSet {
    let mut alive = candidates.clone();
    loop {
        let victim = alive
            .iter()
            .find(|&v| layers.iter().any(|&i| g.layer(i).degree_within(v, &alive) < d as usize));
        match victim {
            Some(v) => {
                alive.remove(v);
            }
            None => return alive,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn core_numbers_match_naive_d_core(graph in multilayer_strategy(24, 1, 80), d in 1u32..5) {
        let layer = graph.layer(0);
        let fast = d_core(layer, d);
        let naive = naive_d_core(layer, d);
        prop_assert_eq!(fast.to_vec(), naive.to_vec());
    }

    #[test]
    fn core_number_is_max_d_with_membership(graph in multilayer_strategy(20, 1, 70)) {
        let layer = graph.layer(0);
        let core = core_numbers(layer);
        for d in 1..=4u32 {
            let dc = d_core(layer, d);
            for v in 0..layer.num_vertices() as Vertex {
                prop_assert_eq!(dc.contains(v), core[v as usize] >= d,
                    "membership mismatch at v={} d={}", v, d);
            }
        }
    }

    #[test]
    fn dcc_is_dense_and_contains_no_denser_superset(
        graph in multilayer_strategy(20, 3, 60),
        d in 1u32..4,
    ) {
        let all = graph.full_vertex_set();
        let layers = vec![0usize, 1, 2];
        let cc = d_coherent_core(&graph, &layers, d, &all);
        prop_assert!(is_d_dense_multilayer(&graph, &layers, &cc, d));
        // Adding any single outside vertex breaks maximality: the d-CC of the
        // graph is unique, so recomputation from the enlarged candidate set
        // must return the same set.
        for v in 0..graph.num_vertices() as Vertex {
            if !cc.contains(v) {
                let mut enlarged = cc.clone();
                enlarged.insert(v);
                let again = d_coherent_core(&graph, &layers, d, &enlarged);
                prop_assert_eq!(again.to_vec(), cc.to_vec());
            }
        }
    }

    #[test]
    fn dcc_hierarchy_and_containment(graph in multilayer_strategy(22, 3, 70)) {
        let all = graph.full_vertex_set();
        // Hierarchy in d (Property 2).
        let mut prev = d_coherent_core(&graph, &[0, 1], 0, &all);
        for d in 1..4u32 {
            let cur = d_coherent_core(&graph, &[0, 1], d, &all);
            prop_assert!(cur.is_subset_of(&prev));
            prev = cur;
        }
        // Containment in L (Property 3) and intersection bound (Lemma 1).
        for d in 1..3u32 {
            let c01 = d_coherent_core(&graph, &[0, 1], d, &all);
            let c0 = d_coherent_core(&graph, &[0], d, &all);
            let c1 = d_coherent_core(&graph, &[1], d, &all);
            let c012 = d_coherent_core(&graph, &[0, 1, 2], d, &all);
            prop_assert!(c01.is_subset_of(&c0));
            prop_assert!(c01.is_subset_of(&c1));
            prop_assert!(c012.is_subset_of(&c01));
            prop_assert!(c01.is_subset_of(&c0.intersection(&c1)));
        }
    }

    #[test]
    fn dcc_on_intersection_of_cores_equals_dcc_on_full_graph(
        graph in multilayer_strategy(25, 3, 90),
        d in 1u32..4,
    ) {
        // The greedy algorithm's key shortcut (line 5 of GD-DCCS): computing
        // the d-CC inside the intersection of per-layer d-cores gives the
        // same result as computing it on the whole graph.
        let all = graph.full_vertex_set();
        let layers = vec![0usize, 2];
        let full = d_coherent_core(&graph, &layers, d, &all);
        let mut candidates = d_core(graph.layer(0), d);
        candidates.intersect_with(&d_core(graph.layer(2), d));
        let restricted = d_coherent_core(&graph, &layers, d, &candidates);
        prop_assert_eq!(full.to_vec(), restricted.to_vec());
    }

    #[test]
    fn workspace_engine_matches_naive_from_scratch_peel(
        graph in multilayer_strategy(22, 3, 80),
        d in 1u32..4,
        restrict in prop::collection::vec(0u32..22, 0..22),
    ) {
        // One workspace reused across every subset and candidate set of the
        // case: the optimized engine must agree with both the allocating
        // reference implementation and a definitional from-scratch peel,
        // with no state leaking between calls.
        let mut ws = PeelWorkspace::new();
        let mut out = VertexSet::new(graph.num_vertices());
        let all = graph.full_vertex_set();
        let restricted = VertexSet::from_iter(graph.num_vertices(), restrict);
        for candidates in [&all, &restricted] {
            for layers in [vec![0usize], vec![1], vec![0, 1], vec![0, 2], vec![0, 1, 2]] {
                let engine = d_coherent_core(&graph, &layers, d, candidates);
                let naive = d_coherent_core_naive(&graph, &layers, d, candidates);
                let definitional = definitional_dcc(&graph, &layers, d, candidates);
                prop_assert_eq!(engine.to_vec(), naive.to_vec(),
                    "engine vs reference: layers={:?} d={}", layers, d);
                prop_assert_eq!(naive.to_vec(), definitional.to_vec(),
                    "reference vs definitional: layers={:?} d={}", layers, d);
                d_coherent_core_in(&mut ws, &graph, &layers, d, candidates, &mut out);
                prop_assert_eq!(out.to_vec(), engine.to_vec(),
                    "explicit workspace vs thread-local: layers={:?} d={}", layers, d);
            }
        }
    }

    #[test]
    fn single_layer_dcc_matches_d_core(graph in multilayer_strategy(20, 2, 60), d in 1u32..4) {
        let all = graph.full_vertex_set();
        let via_dcc = d_coherent_core(&graph, &[1], d, &all);
        let via_core = d_core(graph.layer(1), d);
        prop_assert_eq!(via_dcc.to_vec(), via_core.to_vec());
        prop_assert!(is_d_dense(graph.layer(1), &via_core, d));
    }
}
