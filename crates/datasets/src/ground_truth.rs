//! Ground-truth modules planted by the dataset generators.
//!
//! The PPI analogue plays the role of the STRING protein–protein interaction
//! network; its planted complexes stand in for the MIPS protein-complex
//! catalogue used by the Fig. 32 experiment. The Author analogue's planted
//! collaboration groups can be used the same way.

use mlgraph::{Vertex, VertexSet};

/// The ground truth shipped with a generated dataset.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// Planted modules ("protein complexes" / "stories"), each a sorted
    /// vertex list.
    pub modules: Vec<Vec<Vertex>>,
    /// For each module, the layers it was planted on.
    pub module_layers: Vec<Vec<usize>>,
}

impl GroundTruth {
    /// Number of planted modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether no module was planted.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// The union of all module members.
    pub fn cover(&self, num_vertices: usize) -> VertexSet {
        let mut cover = VertexSet::new(num_vertices);
        for module in &self.modules {
            for &v in module {
                cover.insert(v);
            }
        }
        cover
    }

    /// Modules entirely contained in at least one of the given dense
    /// subgraphs (the Fig. 32 "found" criterion), returned as indices.
    pub fn found_in(&self, dense_subgraphs: &[VertexSet]) -> Vec<usize> {
        self.modules
            .iter()
            .enumerate()
            .filter(|(_, module)| {
                dense_subgraphs.iter().any(|s| module.iter().all(|&v| s.contains(v)))
            })
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        GroundTruth {
            modules: vec![vec![0, 1, 2], vec![3, 4], vec![5, 6, 7]],
            module_layers: vec![vec![0, 1], vec![1, 2], vec![0, 2]],
        }
    }

    #[test]
    fn basic_accessors() {
        let t = truth();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.cover(10).to_vec(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(GroundTruth::default().is_empty());
    }

    #[test]
    fn found_in_requires_full_containment() {
        let t = truth();
        let dense = vec![VertexSet::from_iter(10, [0, 1, 2, 3]), VertexSet::from_iter(10, [5, 6])];
        // Module 0 fully inside the first subgraph; module 1 split; module 2
        // only partially inside the second subgraph.
        assert_eq!(t.found_in(&dense), vec![0]);
        assert!(t.found_in(&[]).is_empty());
    }
}
