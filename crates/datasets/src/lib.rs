//! # datasets — synthetic analogues of the paper's experiment datasets
//!
//! The paper evaluates on six real multi-layer graphs (Fig. 12): PPI,
//! Author, German, Wiki, English and Stack. Those datasets cannot be bundled
//! here, so this crate generates *seeded synthetic analogues* that preserve
//! the characteristics the DCCS algorithms are sensitive to:
//!
//! * the number of layers and the relative edge density per layer,
//! * inter-layer correlation (temporal snapshots share structure,
//!   biological layers share modules),
//! * planted dense modules recurring on subsets of layers (the structures
//!   d-CCs and quasi-cliques both look for), and
//! * for the PPI analogue, a planted ground-truth set of protein complexes
//!   used by the Fig. 32 experiment.
//!
//! The vertex counts of the four large datasets are scaled down so that the
//! full experiment suite runs on a laptop; see `DESIGN.md` for the
//! substitution rationale. All generators are deterministic given the seed
//! recorded in the dataset spec.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ground_truth;
pub mod registry;
pub mod spec;
pub mod synthetic;

pub use ground_truth::GroundTruth;
pub use registry::{all_datasets, generate, Dataset, DatasetId, Scale};
pub use spec::{DatasetSpec, PaperStats};
