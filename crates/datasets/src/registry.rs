//! The dataset registry: one entry per paper dataset, generated on demand at
//! a chosen scale.

use crate::ground_truth::GroundTruth;
use crate::spec::{paper_stats, DatasetSpec};
use crate::synthetic::{module_graph, temporal_graph, ModuleGraphConfig, TemporalGraphConfig};
use mlgraph::MultiLayerGraph;

/// The six datasets of Fig. 12.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// STRING protein–protein interaction network (8 detection methods).
    Ppi,
    /// AMiner co-authorship network (10 years).
    Author,
    /// German Wikipedia interaction snapshots (14 years).
    German,
    /// Wiki talk snapshots (24 windows).
    Wiki,
    /// English Wikipedia interaction snapshots (15 years).
    English,
    /// Stack Overflow interaction snapshots (24 windows).
    Stack,
}

impl DatasetId {
    /// The paper's name for the dataset.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Ppi => "PPI",
            DatasetId::Author => "Author",
            DatasetId::German => "German",
            DatasetId::Wiki => "Wiki",
            DatasetId::English => "English",
            DatasetId::Stack => "Stack",
        }
    }

    /// Parses a dataset name (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "ppi" => Some(DatasetId::Ppi),
            "author" => Some(DatasetId::Author),
            "german" => Some(DatasetId::German),
            "wiki" => Some(DatasetId::Wiki),
            "english" => Some(DatasetId::English),
            "stack" => Some(DatasetId::Stack),
            _ => None,
        }
    }

    /// Whether the analogue ships ground-truth modules.
    pub fn has_ground_truth(self) -> bool {
        matches!(self, DatasetId::Ppi | DatasetId::Author)
    }

    /// The dataset specification (paper stats + analogue shape at
    /// [`Scale::Full`]).
    pub fn spec(self) -> DatasetSpec {
        let (synthetic_vertices, synthetic_edges_per_layer) = full_shape(self);
        let paper = paper_stats(self.name()).expect("paper stats exist for every dataset");
        DatasetSpec {
            name: self.name(),
            description: match self {
                DatasetId::Ppi => "protein interactions detected by 8 methods",
                DatasetId::Author => "co-authorship across 10 years",
                DatasetId::German => "German Wikipedia user interactions per year",
                DatasetId::Wiki => "wiki interactions per time window",
                DatasetId::English => "English Wikipedia user interactions per year",
                DatasetId::Stack => "Stack Overflow interactions per time window",
            },
            paper,
            synthetic_vertices,
            synthetic_layers: paper.num_layers,
            synthetic_edges_per_layer,
            has_ground_truth: self.has_ground_truth(),
            seed: seed_of(self),
        }
    }
}

/// All six dataset identifiers in Fig. 12 order.
pub fn all_datasets() -> [DatasetId; 6] {
    [
        DatasetId::Ppi,
        DatasetId::Author,
        DatasetId::German,
        DatasetId::Wiki,
        DatasetId::English,
        DatasetId::Stack,
    ]
}

/// How large an analogue to generate.
///
/// * `Large` — four times `Full`, for the large-scale bench tier (the
///   10^6-vertex runs additionally use the Chung–Lu generator directly,
///   which streams one layer at a time).
/// * `Full` — the default experiment scale (large datasets are scaled down
///   from the paper's millions of vertices to tens of thousands).
/// * `Small` — one quarter of `Full`, for quick experiment runs.
/// * `Tiny` — a few hundred vertices, for tests and Criterion benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Four times the default scale.
    Large,
    /// Default experiment scale.
    Full,
    /// Quarter scale.
    Small,
    /// Test scale.
    Tiny,
}

impl Scale {
    /// Parses a scale name.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "large" => Some(Scale::Large),
            "full" => Some(Scale::Full),
            "small" => Some(Scale::Small),
            "tiny" => Some(Scale::Tiny),
            _ => None,
        }
    }

    /// Applies the scale to a [`Scale::Full`] quantity (vertex counts,
    /// edge counts, module/story counts).
    fn scaled(self, value: usize) -> usize {
        match self {
            Scale::Large => value * 4,
            Scale::Full => value,
            Scale::Small => value / 4,
            Scale::Tiny => value / 16,
        }
    }
}

/// A generated dataset: the graph, optional ground truth, and its spec.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Which dataset this is.
    pub id: DatasetId,
    /// The generated multi-layer graph.
    pub graph: MultiLayerGraph,
    /// Planted ground-truth modules (non-empty for PPI and Author).
    pub ground_truth: GroundTruth,
    /// The dataset specification.
    pub spec: DatasetSpec,
}

fn seed_of(id: DatasetId) -> u64 {
    match id {
        DatasetId::Ppi => 0xA11CE,
        DatasetId::Author => 0xB0B,
        DatasetId::German => 0xDE,
        DatasetId::Wiki => 0x91C1,
        DatasetId::English => 0xE17,
        DatasetId::Stack => 0x57AC,
    }
}

/// Full-scale analogue shape: (vertices, edges per layer).
fn full_shape(id: DatasetId) -> (usize, usize) {
    match id {
        DatasetId::Ppi => (328, 400),
        DatasetId::Author => (1_017, 1_100),
        DatasetId::German => (8_000, 9_000),
        DatasetId::Wiki => (12_000, 7_000),
        DatasetId::English => (15_000, 16_000),
        DatasetId::Stack => (20_000, 26_000),
    }
}

/// Generates a dataset analogue at the requested scale.
pub fn generate(id: DatasetId, scale: Scale) -> Dataset {
    let spec = id.spec();
    let n = scale.scaled(spec.synthetic_vertices).max(64);
    let epl = scale.scaled(spec.synthetic_edges_per_layer).max(64);
    let (graph, ground_truth) = match id {
        DatasetId::Ppi => module_graph(&ModuleGraphConfig {
            num_vertices: n,
            num_layers: spec.synthetic_layers,
            num_modules: scale.scaled(30).max(6),
            module_size: (4, 12.min(n / 4).max(5)),
            layers_per_module: 5,
            density: 0.9,
            background_edges_per_layer: epl,
            seed: spec.seed,
        }),
        DatasetId::Author => module_graph(&ModuleGraphConfig {
            num_vertices: n,
            num_layers: spec.synthetic_layers,
            num_modules: scale.scaled(60).max(8),
            module_size: (4, 16.min(n / 4).max(5)),
            layers_per_module: 5,
            density: 0.85,
            background_edges_per_layer: epl,
            seed: spec.seed,
        }),
        DatasetId::German | DatasetId::Wiki | DatasetId::English | DatasetId::Stack => {
            let layers_per_story = (spec.synthetic_layers / 2).max(3);
            temporal_graph(&TemporalGraphConfig {
                num_vertices: n,
                num_layers: spec.synthetic_layers,
                edges_per_layer: epl,
                retain: 0.55,
                core_size: (n / 40).max(16),
                core_bias: 0.3,
                num_stories: scale.scaled(24).max(6),
                story_size: (12, 30.min(n / 8).max(13)),
                layers_per_story: layers_per_story.min(spec.synthetic_layers),
                story_density: 0.8,
                seed: spec.seed,
            })
        }
    };
    Dataset { id, graph, ground_truth, spec }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for id in all_datasets() {
            assert_eq!(DatasetId::parse(id.name()), Some(id));
            assert_eq!(DatasetId::parse(&id.name().to_lowercase()), Some(id));
        }
        assert_eq!(DatasetId::parse("nope"), None);
    }

    #[test]
    fn specs_match_paper_layer_counts() {
        assert_eq!(DatasetId::Ppi.spec().synthetic_layers, 8);
        assert_eq!(DatasetId::Author.spec().synthetic_layers, 10);
        assert_eq!(DatasetId::German.spec().synthetic_layers, 14);
        assert_eq!(DatasetId::Wiki.spec().synthetic_layers, 24);
        assert_eq!(DatasetId::English.spec().synthetic_layers, 15);
        assert_eq!(DatasetId::Stack.spec().synthetic_layers, 24);
    }

    #[test]
    fn tiny_ppi_generates_quickly_with_ground_truth() {
        let ds = generate(DatasetId::Ppi, Scale::Tiny);
        assert_eq!(ds.graph.num_layers(), 8);
        assert!(ds.graph.num_vertices() >= 64);
        assert!(!ds.ground_truth.is_empty());
        assert!(ds.graph.validate());
    }

    #[test]
    fn tiny_temporal_datasets_generate_with_stories() {
        for id in [DatasetId::German, DatasetId::Wiki] {
            let ds = generate(id, Scale::Tiny);
            assert_eq!(ds.graph.num_layers(), ds.spec.synthetic_layers);
            assert!(!ds.ground_truth.is_empty());
            assert!(ds.graph.validate());
        }
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("Small"), Some(Scale::Small));
        assert_eq!(Scale::parse("TINY"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("large"), Some(Scale::Large));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn large_scale_quadruples_the_full_shape() {
        let ds = generate(DatasetId::Ppi, Scale::Large);
        assert_eq!(ds.graph.num_vertices(), 4 * 328);
        assert_eq!(ds.graph.num_layers(), 8);
        assert!(ds.graph.validate());
    }

    #[test]
    fn generation_is_deterministic_per_id_and_scale() {
        let a = generate(DatasetId::Ppi, Scale::Tiny);
        let b = generate(DatasetId::Ppi, Scale::Tiny);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.ground_truth.modules, b.ground_truth.modules);
    }

    #[test]
    fn full_ppi_matches_paper_vertex_count() {
        let ds = generate(DatasetId::Ppi, Scale::Full);
        assert_eq!(ds.graph.num_vertices(), 328);
        assert_eq!(ds.spec.paper.num_vertices, 328);
    }
}
