//! Dataset specifications: the paper's published statistics (Fig. 12) and the
//! scaled-down shapes used by the synthetic analogues.

/// The statistics the paper reports for a dataset in Fig. 12.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PaperStats {
    /// `|V(G)|`.
    pub num_vertices: usize,
    /// `Σ_i |E(G_i)|`.
    pub total_edges: usize,
    /// `|∪_i E(G_i)|`.
    pub union_edges: usize,
    /// `l(G)`.
    pub num_layers: usize,
}

/// A dataset description: paper-reported statistics plus the synthetic
/// analogue's generation parameters.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Short dataset name as used in the paper ("PPI", "Author", ...).
    pub name: &'static str,
    /// What the original dataset contains.
    pub description: &'static str,
    /// The statistics published in Fig. 12.
    pub paper: PaperStats,
    /// Number of vertices of the (scaled) synthetic analogue.
    pub synthetic_vertices: usize,
    /// Number of layers of the synthetic analogue (same as the paper).
    pub synthetic_layers: usize,
    /// Edges per layer of the synthetic analogue.
    pub synthetic_edges_per_layer: usize,
    /// Whether the analogue plants ground-truth modules.
    pub has_ground_truth: bool,
    /// Generation seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Scale factor of the analogue relative to the original vertex count.
    pub fn vertex_scale(&self) -> f64 {
        self.synthetic_vertices as f64 / self.paper.num_vertices as f64
    }

    /// A Fig. 12-style row for the paper-reported statistics.
    pub fn paper_row(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}",
            self.name,
            self.paper.num_vertices,
            self.paper.total_edges,
            self.paper.union_edges,
            self.paper.num_layers
        )
    }
}

/// Fig. 12 of the paper, verbatim.
pub const PAPER_STATS: &[(&str, PaperStats)] = &[
    (
        "PPI",
        PaperStats { num_vertices: 328, total_edges: 4_745, union_edges: 3_101, num_layers: 8 },
    ),
    (
        "Author",
        PaperStats {
            num_vertices: 1_017,
            total_edges: 15_065,
            union_edges: 11_069,
            num_layers: 10,
        },
    ),
    (
        "German",
        PaperStats {
            num_vertices: 519_365,
            total_edges: 7_205_624,
            union_edges: 1_653_621,
            num_layers: 14,
        },
    ),
    (
        "Wiki",
        PaperStats {
            num_vertices: 1_140_149,
            total_edges: 7_833_140,
            union_edges: 3_309_592,
            num_layers: 24,
        },
    ),
    (
        "English",
        PaperStats {
            num_vertices: 1_749_651,
            total_edges: 18_951_428,
            union_edges: 5_956_877,
            num_layers: 15,
        },
    ),
    (
        "Stack",
        PaperStats {
            num_vertices: 2_601_977,
            total_edges: 63_497_050,
            union_edges: 36_233_450,
            num_layers: 24,
        },
    ),
];

/// Looks up the paper statistics for a dataset name (case-insensitive).
pub fn paper_stats(name: &str) -> Option<PaperStats> {
    PAPER_STATS.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, s)| *s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stats_table_matches_fig12() {
        assert_eq!(PAPER_STATS.len(), 6);
        let ppi = paper_stats("ppi").unwrap();
        assert_eq!(ppi.num_vertices, 328);
        assert_eq!(ppi.num_layers, 8);
        let stack = paper_stats("Stack").unwrap();
        assert_eq!(stack.num_vertices, 2_601_977);
        assert_eq!(stack.num_layers, 24);
        assert!(paper_stats("unknown").is_none());
    }

    #[test]
    fn spec_helpers() {
        let spec = DatasetSpec {
            name: "PPI",
            description: "protein-protein interactions",
            paper: paper_stats("PPI").unwrap(),
            synthetic_vertices: 328,
            synthetic_layers: 8,
            synthetic_edges_per_layer: 500,
            has_ground_truth: true,
            seed: 1,
        };
        assert!((spec.vertex_scale() - 1.0).abs() < 1e-12);
        let row = spec.paper_row();
        assert!(row.starts_with("PPI\t328\t4745"));
    }
}
