//! Composition of the low-level `mlgraph` generators into dataset analogues.
//!
//! Two families are produced:
//!
//! * **module graphs** (PPI, Author) — background noise plus planted dense
//!   modules recurring on subsets of layers, with the planted modules
//!   returned as ground truth;
//! * **temporal graphs** (German, Wiki, English, Stack) — correlated
//!   snapshot layers with a persistent interaction core, overlaid with
//!   planted "story" communities so diversified core search has meaningful
//!   structure to find.

use crate::ground_truth::GroundTruth;
use mlgraph::generators::{planted_communities, temporal_snapshots, PlantedConfig, TemporalConfig};
use mlgraph::{MultiLayerGraph, Vertex};

/// Parameters for a module-style dataset (PPI / Author analogues).
#[derive(Clone, Debug)]
pub struct ModuleGraphConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of layers.
    pub num_layers: usize,
    /// Number of planted modules.
    pub num_modules: usize,
    /// Inclusive module size range.
    pub module_size: (usize, usize),
    /// Layers each module recurs on.
    pub layers_per_module: usize,
    /// Intra-module edge probability on the module's layers.
    pub density: f64,
    /// Background random edges per layer.
    pub background_edges_per_layer: usize,
    /// Seed.
    pub seed: u64,
}

/// Generates a module-style dataset and its ground truth.
pub fn module_graph(config: &ModuleGraphConfig) -> (MultiLayerGraph, GroundTruth) {
    let planted = planted_communities(&PlantedConfig {
        num_vertices: config.num_vertices,
        num_layers: config.num_layers,
        num_communities: config.num_modules,
        community_size: config.module_size,
        layers_per_community: config.layers_per_module,
        intra_edge_prob: config.density,
        background_edges_per_layer: config.background_edges_per_layer,
        seed: config.seed,
    })
    .expect("module graph configuration must be valid");
    let truth = GroundTruth {
        modules: planted.communities.iter().map(|c| c.members.clone()).collect(),
        module_layers: planted.communities.iter().map(|c| c.layers.clone()).collect(),
    };
    (planted.graph, truth)
}

/// Parameters for a temporal-snapshot dataset (German / Wiki / English /
/// Stack analogues).
#[derive(Clone, Debug)]
pub struct TemporalGraphConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of snapshot layers.
    pub num_layers: usize,
    /// Edges per snapshot.
    pub edges_per_layer: usize,
    /// Fraction of edges retained between consecutive snapshots.
    pub retain: f64,
    /// Size of the persistent interaction core.
    pub core_size: usize,
    /// Fraction of fresh edges biased into the persistent core.
    pub core_bias: f64,
    /// Number of planted story communities overlaid on the snapshots.
    pub num_stories: usize,
    /// Inclusive story size range.
    pub story_size: (usize, usize),
    /// Layers each story recurs on.
    pub layers_per_story: usize,
    /// Intra-story edge probability.
    pub story_density: f64,
    /// Seed.
    pub seed: u64,
}

/// Generates a temporal dataset: correlated snapshots overlaid with planted
/// story communities. Returns the graph and the planted stories as ground
/// truth.
pub fn temporal_graph(config: &TemporalGraphConfig) -> (MultiLayerGraph, GroundTruth) {
    let base = temporal_snapshots(&TemporalConfig {
        num_vertices: config.num_vertices,
        num_layers: config.num_layers,
        edges_per_layer: config.edges_per_layer,
        retain: config.retain,
        core_size: config.core_size,
        core_bias: config.core_bias,
        seed: config.seed,
    })
    .expect("temporal graph configuration must be valid");
    let stories = planted_communities(&PlantedConfig {
        num_vertices: config.num_vertices,
        num_layers: config.num_layers,
        num_communities: config.num_stories,
        community_size: config.story_size,
        layers_per_community: config.layers_per_story,
        intra_edge_prob: config.story_density,
        background_edges_per_layer: 0,
        seed: config.seed.wrapping_add(0x5107),
    })
    .expect("story overlay configuration must be valid");
    let graph = merge(&base, &stories.graph);
    let truth = GroundTruth {
        modules: stories.communities.iter().map(|c| c.members.clone()).collect(),
        module_layers: stories.communities.iter().map(|c| c.layers.clone()).collect(),
    };
    (graph, truth)
}

/// Merges two multi-layer graphs over the same universe and layer count by
/// taking the per-layer union of their edge sets.
pub fn merge(a: &MultiLayerGraph, b: &MultiLayerGraph) -> MultiLayerGraph {
    assert_eq!(a.num_vertices(), b.num_vertices(), "vertex universes must match");
    assert_eq!(a.num_layers(), b.num_layers(), "layer counts must match");
    let per_layer: Vec<Vec<(Vertex, Vertex)>> = (0..a.num_layers())
        .map(|i| {
            let mut edges: Vec<(Vertex, Vertex)> = a.layer(i).edges().collect();
            edges.extend(b.layer(i).edges());
            edges
        })
        .collect();
    MultiLayerGraph::from_edge_lists(a.num_vertices(), &per_layer)
        .expect("merged edge lists are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module_config() -> ModuleGraphConfig {
        ModuleGraphConfig {
            num_vertices: 328,
            num_layers: 8,
            num_modules: 30,
            module_size: (4, 12),
            layers_per_module: 4,
            density: 0.9,
            background_edges_per_layer: 300,
            seed: 11,
        }
    }

    fn temporal_config() -> TemporalGraphConfig {
        TemporalGraphConfig {
            num_vertices: 1500,
            num_layers: 6,
            edges_per_layer: 4000,
            retain: 0.6,
            core_size: 80,
            core_bias: 0.3,
            num_stories: 8,
            story_size: (10, 25),
            layers_per_story: 3,
            story_density: 0.8,
            seed: 17,
        }
    }

    #[test]
    fn module_graph_shape_and_truth() {
        let (g, truth) = module_graph(&module_config());
        assert_eq!(g.num_vertices(), 328);
        assert_eq!(g.num_layers(), 8);
        assert_eq!(truth.len(), 30);
        assert!(g.validate());
        for (module, layers) in truth.modules.iter().zip(truth.module_layers.iter()) {
            assert!(module.len() >= 4 && module.len() <= 12);
            assert_eq!(layers.len(), 4);
        }
    }

    #[test]
    fn module_graph_modules_are_dense_on_their_layers() {
        let (g, truth) = module_graph(&ModuleGraphConfig { density: 1.0, ..module_config() });
        for (module, layers) in truth.modules.iter().zip(truth.module_layers.iter()) {
            let set = mlgraph::VertexSet::from_iter(g.num_vertices(), module.iter().copied());
            for &layer in layers {
                for &v in module {
                    assert!(g.layer(layer).degree_within(v, &set) >= module.len() - 1);
                }
            }
        }
    }

    #[test]
    fn temporal_graph_shape_and_truth() {
        let (g, truth) = temporal_graph(&temporal_config());
        assert_eq!(g.num_vertices(), 1500);
        assert_eq!(g.num_layers(), 6);
        assert_eq!(truth.len(), 8);
        assert!(g.validate());
        // The overlay adds edges on top of the snapshots.
        for layer in g.layers() {
            assert!(layer.num_edges() >= 3500);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = temporal_graph(&temporal_config());
        let (b, _) = temporal_graph(&temporal_config());
        assert_eq!(a, b);
        let (c, tc) = module_graph(&module_config());
        let (d, td) = module_graph(&module_config());
        assert_eq!(c, d);
        assert_eq!(tc.modules, td.modules);
    }

    #[test]
    fn merge_unions_edges_per_layer() {
        let a = MultiLayerGraph::from_edge_lists(4, &[vec![(0, 1)], vec![(1, 2)]]).unwrap();
        let b = MultiLayerGraph::from_edge_lists(4, &[vec![(0, 1), (2, 3)], vec![(0, 3)]]).unwrap();
        let m = merge(&a, &b);
        assert_eq!(m.layer(0).num_edges(), 2);
        assert_eq!(m.layer(1).num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "vertex universes must match")]
    fn merge_rejects_mismatched_universes() {
        let a = MultiLayerGraph::from_edge_lists(4, &[vec![(0, 1)]]).unwrap();
        let b = MultiLayerGraph::from_edge_lists(5, &[vec![(0, 1)]]).unwrap();
        let _ = merge(&a, &b);
    }
}
