//! Breadth-first search utilities over a single CSR layer, optionally
//! restricted to a vertex subset.

use crate::bitset::VertexSet;
use crate::csr::Csr;
use crate::Vertex;
use std::collections::VecDeque;

/// BFS distances from `source` inside the induced subgraph `g[within]`.
///
/// Returns `usize::MAX` for unreachable vertices and vertices outside
/// `within`.
pub fn bfs_distances(g: &Csr, source: Vertex, within: &VertexSet) -> Vec<usize> {
    let n = g.num_vertices();
    let mut dist = vec![usize::MAX; n];
    if !within.contains(source) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if within.contains(v) && dist[v as usize] == usize::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The set of vertices reachable from `source` inside `g[within]`
/// (including `source` itself when it belongs to `within`).
pub fn bfs_reachable(g: &Csr, source: Vertex, within: &VertexSet) -> VertexSet {
    let dist = bfs_distances(g, source, within);
    let mut out = VertexSet::new(g.num_vertices());
    for (v, &d) in dist.iter().enumerate() {
        if d != usize::MAX {
            out.insert(v as Vertex);
        }
    }
    out
}

/// A lower bound on the diameter of `g[within]` obtained by a double BFS
/// sweep (BFS from an arbitrary vertex, then BFS from the farthest vertex
/// found). Returns 0 for empty or singleton subsets.
pub fn diameter_lower_bound(g: &Csr, within: &VertexSet) -> usize {
    let Some(start) = within.iter().next() else { return 0 };
    let first = bfs_distances(g, start, within);
    let (far, _) = first
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != usize::MAX)
        .max_by_key(|(_, &d)| d)
        .unwrap_or((start as usize, &0));
    let second = bfs_distances(g, far as Vertex, within);
    second.iter().filter(|&&d| d != usize::MAX).max().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Csr {
        let edges: Vec<(Vertex, Vertex)> = (0..n as Vertex - 1).map(|v| (v, v + 1)).collect();
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn distances_on_path() {
        let g = path_graph(5);
        let all = VertexSet::full(5);
        let d = bfs_distances(&g, 0, &all);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn distances_respect_mask() {
        let g = path_graph(5);
        // Remove the middle vertex: 0-1 | 3-4 disconnects the path.
        let within = VertexSet::from_iter(5, [0, 1, 3, 4]);
        let d = bfs_distances(&g, 0, &within);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
        assert_eq!(d[3], usize::MAX);
    }

    #[test]
    fn source_outside_mask_reaches_nothing() {
        let g = path_graph(4);
        let within = VertexSet::from_iter(4, [0, 1]);
        let d = bfs_distances(&g, 3, &within);
        assert!(d.iter().all(|&x| x == usize::MAX));
        assert!(bfs_reachable(&g, 3, &within).is_empty());
    }

    #[test]
    fn reachable_set_matches_component() {
        let g = Csr::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let all = VertexSet::full(6);
        assert_eq!(bfs_reachable(&g, 0, &all).to_vec(), vec![0, 1, 2]);
        assert_eq!(bfs_reachable(&g, 4, &all).to_vec(), vec![3, 4]);
        assert_eq!(bfs_reachable(&g, 5, &all).to_vec(), vec![5]);
    }

    #[test]
    fn diameter_of_path_is_exact() {
        let g = path_graph(7);
        let all = VertexSet::full(7);
        assert_eq!(diameter_lower_bound(&g, &all), 6);
    }

    #[test]
    fn diameter_of_empty_and_singleton() {
        let g = path_graph(3);
        assert_eq!(diameter_lower_bound(&g, &VertexSet::new(3)), 0);
        assert_eq!(diameter_lower_bound(&g, &VertexSet::from_iter(3, [1])), 0);
    }
}
