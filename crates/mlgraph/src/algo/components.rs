//! Connected components of a single CSR layer restricted to a vertex subset.

use crate::bitset::VertexSet;
use crate::csr::Csr;
use crate::Vertex;
use std::collections::VecDeque;

/// Component labelling of the vertices of `within`.
#[derive(Clone, Debug)]
pub struct ComponentLabels {
    /// `label[v]` is the component id of `v`, or `usize::MAX` for vertices
    /// outside the subset.
    pub label: Vec<usize>,
    /// Number of components found.
    pub num_components: usize,
    /// Size of each component, indexed by component id.
    pub sizes: Vec<usize>,
}

/// Labels the connected components of `g[within]`.
pub fn connected_components(g: &Csr, within: &VertexSet) -> ComponentLabels {
    let n = g.num_vertices();
    let mut label = vec![usize::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for start in within.iter() {
        if label[start as usize] != usize::MAX {
            continue;
        }
        let id = sizes.len();
        sizes.push(0);
        label[start as usize] = id;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            sizes[id] += 1;
            for &v in g.neighbors(u) {
                if within.contains(v) && label[v as usize] == usize::MAX {
                    label[v as usize] = id;
                    queue.push_back(v);
                }
            }
        }
    }
    ComponentLabels { label, num_components: sizes.len(), sizes }
}

/// The largest connected component of `g[within]`, as a vertex set.
/// Returns an empty set when `within` is empty.
pub fn largest_component(g: &Csr, within: &VertexSet) -> VertexSet {
    let labels = connected_components(g, within);
    let mut out = VertexSet::new(g.num_vertices());
    let Some((best, _)) = labels.sizes.iter().enumerate().max_by_key(|(_, &s)| s) else {
        return out;
    };
    for v in within.iter() {
        if labels.label[v as usize] == best {
            out.insert(v as Vertex);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_two_components_and_isolate() {
        let g = Csr::from_edges(7, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let all = VertexSet::full(7);
        let c = connected_components(&g, &all);
        assert_eq!(c.num_components, 3);
        let mut sizes = c.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3, 3]);
        assert_eq!(c.label[0], c.label[2]);
        assert_ne!(c.label[0], c.label[3]);
    }

    #[test]
    fn mask_splits_components() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let within = VertexSet::from_iter(5, [0, 1, 3, 4]);
        let c = connected_components(&g, &within);
        assert_eq!(c.num_components, 2);
        assert_eq!(c.label[2], usize::MAX);
    }

    #[test]
    fn largest_component_extraction() {
        let g = Csr::from_edges(8, &[(0, 1), (1, 2), (2, 0), (3, 4), (5, 6), (6, 7), (5, 7)]);
        let all = VertexSet::full(8);
        let big = largest_component(&g, &all);
        assert_eq!(big.len(), 3);
        let empty = largest_component(&g, &VertexSet::new(8));
        assert!(empty.is_empty());
    }
}
