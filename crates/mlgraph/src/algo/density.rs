//! Density measures over induced subgraphs; used by the Fig. 31-style
//! analysis (quasi-clique-only vertices are sparse, d-CC-only vertices are
//! dense) and by tests.

use crate::bitset::VertexSet;
use crate::csr::Csr;

/// Edge density of `g[within]`: `|E[S]| / C(|S|, 2)`.
/// Returns 0.0 for subsets with fewer than two vertices.
pub fn edge_density_within(g: &Csr, within: &VertexSet) -> f64 {
    let s = within.len();
    if s < 2 {
        return 0.0;
    }
    let possible = s * (s - 1) / 2;
    g.edges_within(within) as f64 / possible as f64
}

/// Average degree inside `g[within]`.
pub fn average_degree_within(g: &Csr, within: &VertexSet) -> f64 {
    let s = within.len();
    if s == 0 {
        return 0.0;
    }
    2.0 * g.edges_within(within) as f64 / s as f64
}

/// Minimum degree inside `g[within]`, or 0 for the empty subset.
pub fn min_degree_within(g: &Csr, within: &VertexSet) -> usize {
    within.iter().map(|v| g.degree_within(v, within)).min().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vertex;

    fn clique(n: usize) -> Csr {
        let mut edges = Vec::new();
        for u in 0..n as Vertex {
            for v in (u + 1)..n as Vertex {
                edges.push((u, v));
            }
        }
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn clique_density_is_one() {
        let g = clique(5);
        let all = VertexSet::full(5);
        assert!((edge_density_within(&g, &all) - 1.0).abs() < 1e-12);
        assert!((average_degree_within(&g, &all) - 4.0).abs() < 1e-12);
        assert_eq!(min_degree_within(&g, &all), 4);
    }

    #[test]
    fn sparse_subset_density() {
        let g = Csr::from_edges(4, &[(0, 1)]);
        let all = VertexSet::full(4);
        assert!((edge_density_within(&g, &all) - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(min_degree_within(&g, &all), 0);
    }

    #[test]
    fn degenerate_subsets() {
        let g = clique(3);
        let empty = VertexSet::new(3);
        let single = VertexSet::from_iter(3, [1]);
        assert_eq!(edge_density_within(&g, &empty), 0.0);
        assert_eq!(edge_density_within(&g, &single), 0.0);
        assert_eq!(average_degree_within(&g, &empty), 0.0);
        assert_eq!(min_degree_within(&g, &empty), 0);
    }
}
