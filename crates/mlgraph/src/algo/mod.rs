//! Small generic graph algorithms used by tests, the baseline, and analysis
//! tooling: BFS, connected components, diameter estimation, and density
//! measures.

mod bfs;
mod components;
mod density;

pub use bfs::{bfs_distances, bfs_reachable, diameter_lower_bound};
pub use components::{connected_components, largest_component, ComponentLabels};
pub use density::{average_degree_within, edge_density_within, min_degree_within};
