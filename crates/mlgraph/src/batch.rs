//! [`EdgeBatch`]: a validated set of per-layer edge mutations applied
//! atomically to a [`MultiLayerGraph`].
//!
//! A batch collects insert and delete operations across any subset of layers.
//! [`MultiLayerGraph::apply_batch`] validates the whole batch up front
//! (ranges, self loops, insert/delete conflicts), canonicalizes and
//! deduplicates it, drops no-op operations (inserting a present edge,
//! deleting an absent one), and only then rebuilds the touched layers via
//! [`Csr::rebuild_with_delta`] — untouched layers are cloned as-is. The
//! receiver is never modified: commit is "build the next version, then swap",
//! which is what lets the service tier keep answering queries on the old
//! snapshot while a commit is in flight.

use crate::csr::Csr;
use crate::error::{GraphError, Result};
use crate::graph::MultiLayerGraph;
use crate::{Layer, Vertex};

/// An ordered collection of edge insertions and deletions, grouped per layer
/// at application time. Built incrementally or parsed from text.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeBatch {
    inserts: Vec<(Layer, Vertex, Vertex)>,
    deletes: Vec<(Layer, Vertex, Vertex)>,
}

impl EdgeBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        EdgeBatch::default()
    }

    /// Records an edge insertion on `layer`. Direction is irrelevant.
    pub fn insert(&mut self, layer: Layer, u: Vertex, v: Vertex) -> &mut Self {
        self.inserts.push((layer, u, v));
        self
    }

    /// Records an edge deletion on `layer`. Direction is irrelevant.
    pub fn delete(&mut self, layer: Layer, u: Vertex, v: Vertex) -> &mut Self {
        self.deletes.push((layer, u, v));
        self
    }

    /// The recorded insertions, in submission order (not yet canonicalized).
    pub fn inserts(&self) -> &[(Layer, Vertex, Vertex)] {
        &self.inserts
    }

    /// The recorded deletions, in submission order (not yet canonicalized).
    pub fn deletes(&self) -> &[(Layer, Vertex, Vertex)] {
        &self.deletes
    }

    /// Total number of recorded operations.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Whether the batch records no operations at all.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Parses a batch from text, one operation per line:
    ///
    /// ```text
    /// # comments and blank lines are skipped
    /// add <layer> <u> <v>
    /// del <layer> <u> <v>
    /// ```
    pub fn from_text(text: &str) -> Result<Self> {
        let mut batch = EdgeBatch::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(GraphError::Parse {
                    line,
                    message: format!(
                        "expected `add|del <layer> <u> <v>`, got {} fields",
                        fields.len()
                    ),
                });
            }
            let parse_num = |field: &str, what: &str| -> Result<u64> {
                field.parse::<u64>().map_err(|_| GraphError::Parse {
                    line,
                    message: format!("invalid {what} `{field}`"),
                })
            };
            let layer = parse_num(fields[1], "layer")? as Layer;
            let u = parse_num(fields[2], "vertex")? as Vertex;
            let v = parse_num(fields[3], "vertex")? as Vertex;
            match fields[0] {
                "add" => batch.insert(layer, u, v),
                "del" => batch.delete(layer, u, v),
                op => {
                    return Err(GraphError::Parse {
                        line,
                        message: format!("unknown operation `{op}` (expected add/del)"),
                    })
                }
            };
        }
        Ok(batch)
    }
}

/// The canonical, effective delta for one touched layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerDelta {
    /// The layer index the delta applies to.
    pub layer: Layer,
    /// Canonical (`u < v`), sorted, deduplicated edges actually inserted.
    pub inserted: Vec<(Vertex, Vertex)>,
    /// Canonical (`u < v`), sorted, deduplicated edges actually deleted.
    pub deleted: Vec<(Vertex, Vertex)>,
}

/// The effective outcome of one committed [`EdgeBatch`]: per-layer deltas for
/// the layers that actually changed, in ascending layer order. No-op
/// operations (duplicate submissions, inserts of present edges, deletes of
/// absent edges) have already been filtered out.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AppliedBatch {
    /// Deltas for the touched layers only, ascending by layer index.
    pub layers: Vec<LayerDelta>,
}

impl AppliedBatch {
    /// Total number of edges inserted across all layers.
    pub fn num_inserted(&self) -> usize {
        self.layers.iter().map(|d| d.inserted.len()).sum()
    }

    /// Total number of edges deleted across all layers.
    pub fn num_deleted(&self) -> usize {
        self.layers.iter().map(|d| d.deleted.len()).sum()
    }

    /// Whether the batch changed nothing.
    pub fn is_noop(&self) -> bool {
        self.layers.is_empty()
    }

    /// The indices of the layers the batch changed, ascending.
    pub fn touched_layers(&self) -> impl Iterator<Item = Layer> + '_ {
        self.layers.iter().map(|d| d.layer)
    }
}

impl MultiLayerGraph {
    /// Applies an [`EdgeBatch`], producing the next graph version and the
    /// effective per-layer delta. The receiver is left untouched.
    ///
    /// Errors on out-of-range layers or vertices, self loops, and on the same
    /// edge appearing in both the insert and delete lists of one layer (the
    /// batch would be order-dependent). Duplicate operations, inserts of
    /// edges already present, and deletes of absent edges are silently
    /// dropped; layers with no effective change are cloned rather than
    /// rebuilt.
    pub fn apply_batch(&self, batch: &EdgeBatch) -> Result<(MultiLayerGraph, AppliedBatch)> {
        let n = self.num_vertices();
        let l = self.num_layers();
        let canonicalize =
            |ops: &[(Layer, Vertex, Vertex)]| -> Result<Vec<(Layer, Vertex, Vertex)>> {
                let mut out = Vec::with_capacity(ops.len());
                for &(layer, u, v) in ops {
                    if layer >= l {
                        return Err(GraphError::LayerOutOfRange { layer, num_layers: l });
                    }
                    if u as usize >= n || v as usize >= n {
                        return Err(GraphError::VertexOutOfRange {
                            vertex: u.max(v) as u64,
                            num_vertices: n,
                        });
                    }
                    if u == v {
                        return Err(GraphError::SelfLoop { vertex: u as u64 });
                    }
                    out.push(if u < v { (layer, u, v) } else { (layer, v, u) });
                }
                out.sort_unstable();
                out.dedup();
                Ok(out)
            };
        let inserts = canonicalize(&batch.inserts)?;
        let deletes = canonicalize(&batch.deletes)?;
        // Same canonical edge on both lists of one layer would make the
        // result depend on application order; reject the whole batch.
        {
            let mut di = deletes.iter().peekable();
            for op in &inserts {
                while di.peek().is_some_and(|d| *d < op) {
                    di.next();
                }
                if di.peek() == Some(&op) {
                    return Err(GraphError::InvalidArgument(format!(
                        "edge ({}, {}) on layer {} is both inserted and deleted",
                        op.1, op.2, op.0
                    )));
                }
            }
        }

        let mut deltas: Vec<LayerDelta> = Vec::new();
        let delta_for = |layer: Layer, deltas: &mut Vec<LayerDelta>| -> usize {
            match deltas.iter().position(|d| d.layer == layer) {
                Some(i) => i,
                None => {
                    deltas.push(LayerDelta { layer, inserted: Vec::new(), deleted: Vec::new() });
                    deltas.len() - 1
                }
            }
        };
        for (layer, u, v) in inserts {
            if !self.layer(layer).has_edge(u, v) {
                let i = delta_for(layer, &mut deltas);
                deltas[i].inserted.push((u, v));
            }
        }
        for (layer, u, v) in deletes {
            if self.layer(layer).has_edge(u, v) {
                let i = delta_for(layer, &mut deltas);
                deltas[i].deleted.push((u, v));
            }
        }
        deltas.retain(|d| !d.inserted.is_empty() || !d.deleted.is_empty());
        deltas.sort_unstable_by_key(|d| d.layer);

        let layers: Vec<Csr> = self
            .layers()
            .iter()
            .enumerate()
            .map(|(i, csr)| match deltas.iter().find(|d| d.layer == i) {
                Some(d) => csr.rebuild_with_delta(&d.inserted, &d.deleted),
                None => csr.clone(),
            })
            .collect();
        let next = MultiLayerGraph::from_parts(
            layers,
            self.vertex_labels().map(|labels| labels.to_vec()),
            self.layer_names().to_vec(),
        );
        Ok((next, AppliedBatch { layers: deltas }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_layer() -> MultiLayerGraph {
        MultiLayerGraph::from_edge_lists(5, &[vec![(0, 1), (1, 2), (2, 0)], vec![(0, 1), (3, 4)]])
            .unwrap()
    }

    #[test]
    fn apply_batch_inserts_and_deletes() {
        let g = two_layer();
        let mut b = EdgeBatch::new();
        b.insert(0, 3, 0).insert(1, 2, 1).delete(0, 2, 1).delete(1, 4, 3);
        let (next, applied) = g.apply_batch(&b).unwrap();
        assert!(next.layer(0).has_edge(0, 3));
        assert!(!next.layer(0).has_edge(1, 2));
        assert!(next.layer(1).has_edge(1, 2));
        assert!(!next.layer(1).has_edge(3, 4));
        assert!(next.validate());
        assert_eq!(applied.num_inserted(), 2);
        assert_eq!(applied.num_deleted(), 2);
        assert_eq!(applied.touched_layers().collect::<Vec<_>>(), vec![0, 1]);
        // The receiver is untouched.
        assert!(g.layer(0).has_edge(1, 2));
        assert!(!g.layer(0).has_edge(0, 3));
    }

    #[test]
    fn apply_batch_drops_noop_operations() {
        let g = two_layer();
        let mut b = EdgeBatch::new();
        // Insert a present edge (both directions), delete an absent one,
        // and submit a genuine operation twice.
        b.insert(0, 0, 1).insert(0, 1, 0).delete(0, 0, 4).insert(0, 0, 3).insert(0, 3, 0);
        let (next, applied) = g.apply_batch(&b).unwrap();
        assert_eq!(applied.num_inserted(), 1);
        assert_eq!(applied.num_deleted(), 0);
        assert_eq!(applied.layers[0].inserted, vec![(0, 3)]);
        assert_eq!(next.layer(0).num_edges(), 4);
    }

    #[test]
    fn apply_batch_empty_is_noop() {
        let g = two_layer();
        let (next, applied) = g.apply_batch(&EdgeBatch::new()).unwrap();
        assert!(applied.is_noop());
        assert_eq!(next, g);
    }

    #[test]
    fn apply_batch_can_empty_a_layer_and_refill() {
        let g = two_layer();
        let mut b = EdgeBatch::new();
        b.delete(1, 0, 1).delete(1, 3, 4);
        let (emptied, applied) = g.apply_batch(&b).unwrap();
        assert_eq!(emptied.layer(1).num_edges(), 0);
        assert_eq!(applied.num_deleted(), 2);
        let mut refill = EdgeBatch::new();
        refill.insert(1, 2, 4);
        let (next, _) = emptied.apply_batch(&refill).unwrap();
        assert_eq!(next.layer(1).num_edges(), 1);
        assert!(next.layer(1).has_edge(2, 4));
        assert!(next.validate());
    }

    #[test]
    fn apply_batch_rejects_invalid_operations() {
        let g = two_layer();
        let mut out_of_layer = EdgeBatch::new();
        out_of_layer.insert(7, 0, 1);
        assert!(matches!(
            g.apply_batch(&out_of_layer),
            Err(GraphError::LayerOutOfRange { layer: 7, .. })
        ));
        let mut out_of_range = EdgeBatch::new();
        out_of_range.delete(0, 0, 11);
        assert!(matches!(
            g.apply_batch(&out_of_range),
            Err(GraphError::VertexOutOfRange { vertex: 11, .. })
        ));
        let mut self_loop = EdgeBatch::new();
        self_loop.insert(0, 2, 2);
        assert!(matches!(g.apply_batch(&self_loop), Err(GraphError::SelfLoop { vertex: 2 })));
        let mut conflict = EdgeBatch::new();
        conflict.insert(0, 1, 2).delete(0, 2, 1);
        assert!(matches!(g.apply_batch(&conflict), Err(GraphError::InvalidArgument(_))));
        // The same edge on both lists of *different* layers is fine.
        let mut cross_layer = EdgeBatch::new();
        cross_layer.delete(0, 1, 2).insert(1, 1, 2);
        assert!(g.apply_batch(&cross_layer).is_ok());
    }

    #[test]
    fn apply_batch_preserves_labels_and_names() {
        let mut b = crate::MultiLayerGraphBuilder::with_labels(1);
        b.add_labeled_edge(0, "a", "b").unwrap();
        b.add_labeled_edge(0, "b", "c").unwrap();
        let g = b.build();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 0, 2);
        let (next, _) = g.apply_batch(&batch).unwrap();
        assert_eq!(next.vertex_label(2), Some("c"));
        assert_eq!(next.layer_name(0), g.layer_name(0));
    }

    #[test]
    fn from_text_round_trip() {
        let text = "# demo batch\n\nadd 0 1 2\ndel 1 3 4\nadd 1 0 4\n";
        let batch = EdgeBatch::from_text(text).unwrap();
        assert_eq!(batch.inserts(), &[(0, 1, 2), (1, 0, 4)]);
        assert_eq!(batch.deletes(), &[(1, 3, 4)]);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
    }

    #[test]
    fn from_text_rejects_malformed_lines() {
        for (text, needle) in [
            ("add 0 1", "got 3 fields"),
            ("frob 0 1 2", "unknown operation"),
            ("add x 1 2", "invalid layer"),
            ("add 0 1 potato", "invalid vertex"),
        ] {
            match EdgeBatch::from_text(text) {
                Err(GraphError::Parse { line: 1, message }) => {
                    assert!(message.contains(needle), "{message} vs {needle}")
                }
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }
}
