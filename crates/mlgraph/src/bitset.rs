//! [`VertexSet`]: a word-packed bitset over the vertex universe.
//!
//! Every DCCS routine manipulates subsets of the shared vertex universe
//! `0..n`. A bitset with a cached cardinality gives O(1) membership tests,
//! O(n / 64) intersections, and cheap cloning, which is exactly the access
//! pattern of the peeling and coverage procedures.
//!
//! All multi-word combines (intersection, union, difference, and their
//! popcounts) dispatch through the process-selected bit kernel
//! ([`crate::kernels::kernel`]), so they run 4×-unrolled or AVX2 code on
//! hosts that support it while staying bit-identical to the scalar
//! reference everywhere.

use crate::kernels::kernel;
use crate::Vertex;
use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A set of vertices drawn from a fixed universe `0..capacity`.
///
/// The cardinality is maintained incrementally so `len()` is O(1).
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl std::fmt::Debug for VertexSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VertexSet")
            .field("capacity", &self.capacity)
            .field("len", &self.len)
            .field("members", &self.iter().take(32).collect::<Vec<_>>())
            .finish()
    }
}

impl VertexSet {
    /// Creates an empty set over the universe `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        VertexSet { words: vec![0u64; capacity.div_ceil(WORD_BITS)], capacity, len: 0 }
    }

    /// Creates a set containing every vertex of the universe `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut words = vec![!0u64; capacity.div_ceil(WORD_BITS)];
        let rem = capacity % WORD_BITS;
        if rem != 0 {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << rem) - 1;
            }
        }
        if capacity == 0 {
            words.clear();
        }
        VertexSet { words, capacity, len: capacity }
    }

    /// Builds a set from an iterator of vertices over the universe
    /// `0..capacity`. Duplicate vertices are allowed.
    pub fn from_iter<I: IntoIterator<Item = Vertex>>(capacity: usize, iter: I) -> Self {
        let mut s = VertexSet::new(capacity);
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// The size of the universe this set draws from.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of vertices currently in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests membership of `v`.
    #[inline]
    pub fn contains(&self, v: Vertex) -> bool {
        let v = v as usize;
        debug_assert!(v < self.capacity, "vertex {v} out of capacity {}", self.capacity);
        (self.words[v / WORD_BITS] >> (v % WORD_BITS)) & 1 == 1
    }

    /// Inserts `v`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, v: Vertex) -> bool {
        let v = v as usize;
        assert!(v < self.capacity, "vertex {v} out of capacity {}", self.capacity);
        let w = &mut self.words[v / WORD_BITS];
        let mask = 1u64 << (v % WORD_BITS);
        if *w & mask == 0 {
            *w |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `v`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: Vertex) -> bool {
        let v = v as usize;
        assert!(v < self.capacity, "vertex {v} out of capacity {}", self.capacity);
        let w = &mut self.words[v / WORD_BITS];
        let mask = 1u64 << (v % WORD_BITS);
        if *w & mask != 0 {
            *w &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes every vertex from the set (the universe size is unchanged).
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Overwrites this set with the contents of `other`, without allocating.
    /// Panics if the capacities differ.
    pub fn copy_from(&mut self, other: &VertexSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch in copy_from");
        self.words.copy_from_slice(&other.words);
        self.len = other.len;
    }

    /// Overwrites this set with `a ∩ b`, without allocating. Panics if any of
    /// the three capacities differ.
    pub fn assign_intersection(&mut self, a: &VertexSet, b: &VertexSet) {
        assert_eq!(a.capacity, b.capacity, "capacity mismatch in assign_intersection");
        assert_eq!(self.capacity, a.capacity, "capacity mismatch in assign_intersection");
        self.len = kernel().and_assign_count(&mut self.words, &a.words, &b.words);
    }

    /// Overwrites this set with `a \ b`, without allocating. Panics if any of
    /// the three capacities differ.
    pub fn assign_difference(&mut self, a: &VertexSet, b: &VertexSet) {
        assert_eq!(a.capacity, b.capacity, "capacity mismatch in assign_difference");
        assert_eq!(self.capacity, a.capacity, "capacity mismatch in assign_difference");
        self.len = kernel().andnot_assign_count(&mut self.words, &a.words, &b.words);
    }

    /// Iterates the members in increasing vertex order.
    pub fn iter(&self) -> VertexSetIter<'_> {
        VertexSetIter { set: self, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// Collects the members into a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<Vertex> {
        self.iter().collect()
    }

    /// In-place intersection with `other`. Panics if the capacities differ.
    pub fn intersect_with(&mut self, other: &VertexSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch in intersect_with");
        self.len = kernel().and_inplace_count(&mut self.words, &other.words);
    }

    /// In-place union with `other`. Panics if the capacities differ.
    pub fn union_with(&mut self, other: &VertexSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch in union_with");
        self.len = kernel().or_inplace_count(&mut self.words, &other.words);
    }

    /// In-place difference (`self \ other`). Panics if the capacities differ.
    pub fn difference_with(&mut self, other: &VertexSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch in difference_with");
        self.len = kernel().andnot_inplace_count(&mut self.words, &other.words);
    }

    /// Returns a new set that is the intersection of `self` and `other`.
    pub fn intersection(&self, other: &VertexSet) -> VertexSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Returns a new set that is the union of `self` and `other`.
    pub fn union(&self, other: &VertexSet) -> VertexSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns a new set that is `self \ other`.
    pub fn difference(&self, other: &VertexSet) -> VertexSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// The packed words backing the set (bit `v % 64` of word `v / 64`).
    /// Exposed for word-level algorithms (dense adjacency intersect-counts).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Size of the intersection with a raw word slice (same packing as
    /// [`VertexSet::words`]); slices shorter than the set's word count are
    /// treated as zero-extended.
    #[inline]
    pub fn intersection_len_words(&self, words: &[u64]) -> usize {
        kernel().and_count(&self.words, words)
    }

    /// Size of the intersection without materializing it.
    pub fn intersection_len(&self, other: &VertexSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch in intersection_len");
        kernel().and_count(&self.words, &other.words)
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset_of(&self, other: &VertexSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch in is_subset_of");
        self.words.iter().zip(other.words.iter()).all(|(a, b)| a & !b == 0)
    }

    /// Whether the two sets share no vertex.
    pub fn is_disjoint_from(&self, other: &VertexSet) -> bool {
        self.intersection_len(other) == 0
    }
}

impl FromIterator<Vertex> for VertexSet {
    /// Builds a set whose capacity is one past the largest vertex seen.
    fn from_iter<I: IntoIterator<Item = Vertex>>(iter: I) -> Self {
        let items: Vec<Vertex> = iter.into_iter().collect();
        let capacity = items.iter().copied().max().map(|m| m as usize + 1).unwrap_or(0);
        VertexSet::from_iter(capacity, items)
    }
}

impl<'a> IntoIterator for &'a VertexSet {
    type Item = Vertex;
    type IntoIter = VertexSetIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the members of a [`VertexSet`], in increasing order.
pub struct VertexSetIter<'a> {
    set: &'a VertexSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for VertexSetIter<'_> {
    type Item = Vertex;

    fn next(&mut self) -> Option<Vertex> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some((self.word_idx * WORD_BITS + bit) as Vertex);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let s = VertexSet::new(100);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 100);
        assert!(!s.contains(0));
        assert!(!s.contains(99));
    }

    #[test]
    fn full_contains_everything() {
        let s = VertexSet::full(130);
        assert_eq!(s.len(), 130);
        for v in 0..130 {
            assert!(s.contains(v));
        }
        assert_eq!(s.to_vec().len(), 130);
    }

    #[test]
    fn full_of_zero_capacity() {
        let s = VertexSet::full(0);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn full_exact_word_boundary() {
        let s = VertexSet::full(128);
        assert_eq!(s.len(), 128);
        assert!(s.contains(127));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = VertexSet::new(70);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(64));
        assert_eq!(s.len(), 2);
        assert!(s.contains(3));
        assert!(s.contains(64));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.len(), 1);
        assert_eq!(s.to_vec(), vec![64]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = VertexSet::from_iter(10, [1, 3, 5, 7]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.to_vec(), Vec::<Vertex>::new());
    }

    #[test]
    fn iteration_order_is_sorted() {
        let s = VertexSet::from_iter(200, [150, 3, 64, 65, 3, 199]);
        assert_eq!(s.to_vec(), vec![3, 64, 65, 150, 199]);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn set_algebra() {
        let a = VertexSet::from_iter(100, [1, 2, 3, 64, 65]);
        let b = VertexSet::from_iter(100, [2, 3, 4, 65, 99]);
        assert_eq!(a.intersection(&b).to_vec(), vec![2, 3, 65]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 4, 64, 65, 99]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 64]);
        assert_eq!(a.intersection_len(&b), 3);
        assert_eq!(a.intersection(&b).len(), 3);
        assert_eq!(a.union(&b).len(), 7);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = VertexSet::from_iter(50, [1, 2, 3]);
        let b = VertexSet::from_iter(50, [1, 2, 3, 10]);
        let c = VertexSet::from_iter(50, [20, 30]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(a.is_disjoint_from(&c));
        assert!(!a.is_disjoint_from(&b));
    }

    #[test]
    fn from_iterator_infers_capacity() {
        let s: VertexSet = [5u32, 9, 2].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.to_vec(), vec![2, 5, 9]);
        let empty: VertexSet = std::iter::empty::<Vertex>().collect();
        assert_eq!(empty.capacity(), 0);
    }

    #[test]
    fn copy_from_overwrites_in_place() {
        let src = VertexSet::from_iter(100, [1, 64, 99]);
        let mut dst = VertexSet::from_iter(100, [2, 3]);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.len(), 3);
        let empty = VertexSet::new(100);
        dst.copy_from(&empty);
        assert!(dst.is_empty());
    }

    #[test]
    fn assign_intersection_matches_intersection() {
        let a = VertexSet::from_iter(130, [1, 2, 3, 64, 65, 129]);
        let b = VertexSet::from_iter(130, [2, 3, 4, 65, 128]);
        let mut out = VertexSet::from_iter(130, [77]);
        out.assign_intersection(&a, &b);
        assert_eq!(out, a.intersection(&b));
        assert_eq!(out.to_vec(), vec![2, 3, 65]);
    }

    #[test]
    fn assign_difference_matches_difference() {
        let a = VertexSet::from_iter(130, [1, 2, 3, 64, 65, 129]);
        let b = VertexSet::from_iter(130, [2, 3, 4, 65, 128]);
        let mut out = VertexSet::from_iter(130, [77]);
        out.assign_difference(&a, &b);
        assert_eq!(out, a.difference(&b));
        assert_eq!(out.to_vec(), vec![1, 64, 129]);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn copy_from_capacity_mismatch_panics() {
        let mut a = VertexSet::new(10);
        let b = VertexSet::new(20);
        a.copy_from(&b);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn mismatched_capacity_panics() {
        let a = VertexSet::new(10);
        let b = VertexSet::new(20);
        let _ = a.intersection_len(&b);
    }

    #[test]
    fn debug_output_is_compact() {
        let s = VertexSet::from_iter(10, [1, 2]);
        let dbg = format!("{s:?}");
        assert!(dbg.contains("len"));
        assert!(dbg.contains('1'));
    }
}
