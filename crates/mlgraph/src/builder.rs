//! [`MultiLayerGraphBuilder`]: incremental construction of multi-layer graphs.

use crate::csr::Csr;
use crate::error::{GraphError, Result};
use crate::graph::MultiLayerGraph;
use crate::{Layer, Vertex};
use std::collections::HashMap;

/// Accumulates edges per layer and produces a [`MultiLayerGraph`].
///
/// Two construction styles are supported:
///
/// * **index mode** ([`MultiLayerGraphBuilder::new`]) — the vertex universe
///   `0..n` and the layer count are fixed up front and edges are added by
///   index;
/// * **label mode** ([`MultiLayerGraphBuilder::with_labels`]) — vertices are
///   referred to by string labels and interned on first use, which is what
///   the text loaders use.
#[derive(Debug, Clone)]
pub struct MultiLayerGraphBuilder {
    num_vertices: usize,
    edges: Vec<Vec<(Vertex, Vertex)>>,
    labels: Option<LabelInterner>,
    layer_names: Vec<String>,
    allow_growth: bool,
}

#[derive(Debug, Clone, Default)]
struct LabelInterner {
    map: HashMap<String, Vertex>,
    names: Vec<String>,
}

impl LabelInterner {
    fn intern(&mut self, label: &str) -> Vertex {
        if let Some(&v) = self.map.get(label) {
            return v;
        }
        let v = self.names.len() as Vertex;
        self.names.push(label.to_string());
        self.map.insert(label.to_string(), v);
        v
    }
}

impl MultiLayerGraphBuilder {
    /// Creates a builder for a graph with exactly `num_vertices` vertices and
    /// `num_layers` layers; edges are added by index.
    pub fn new(num_vertices: usize, num_layers: usize) -> Self {
        MultiLayerGraphBuilder {
            num_vertices,
            edges: vec![Vec::new(); num_layers],
            labels: None,
            layer_names: (0..num_layers).map(|i| format!("layer{i}")).collect(),
            allow_growth: false,
        }
    }

    /// Creates a label-interning builder with `num_layers` layers. The vertex
    /// universe grows as new labels are seen.
    pub fn with_labels(num_layers: usize) -> Self {
        MultiLayerGraphBuilder {
            num_vertices: 0,
            edges: vec![Vec::new(); num_layers],
            labels: Some(LabelInterner::default()),
            layer_names: (0..num_layers).map(|i| format!("layer{i}")).collect(),
            allow_growth: true,
        }
    }

    /// Renames the layers. Extra names are ignored; missing names keep their
    /// default `layerN` value.
    pub fn set_layer_names<S: AsRef<str>>(&mut self, names: &[S]) -> &mut Self {
        for (slot, name) in self.layer_names.iter_mut().zip(names.iter()) {
            *slot = name.as_ref().to_string();
        }
        self
    }

    /// Number of layers the builder was created with.
    pub fn num_layers(&self) -> usize {
        self.edges.len()
    }

    /// Current size of the vertex universe.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Adds the undirected edge `(u, v)` to layer `layer`.
    ///
    /// Errors if the layer is out of range, the edge is a self loop, or (in
    /// index mode) an endpoint is outside the declared universe.
    pub fn add_edge(&mut self, layer: Layer, u: Vertex, v: Vertex) -> Result<()> {
        if layer >= self.edges.len() {
            return Err(GraphError::LayerOutOfRange { layer, num_layers: self.edges.len() });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u as u64 });
        }
        let max = u.max(v) as usize;
        if max >= self.num_vertices {
            if self.allow_growth {
                self.num_vertices = max + 1;
            } else {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u.max(v) as u64,
                    num_vertices: self.num_vertices,
                });
            }
        }
        self.edges[layer].push((u, v));
        Ok(())
    }

    /// Adds an undirected edge between two labeled vertices, interning the
    /// labels. Only valid for builders created with
    /// [`MultiLayerGraphBuilder::with_labels`].
    pub fn add_labeled_edge(&mut self, layer: Layer, u: &str, v: &str) -> Result<()> {
        let (a, b) = {
            let interner = self.labels.as_mut().ok_or_else(|| {
                GraphError::InvalidArgument(
                    "add_labeled_edge requires a with_labels builder".into(),
                )
            })?;
            (interner.intern(u), interner.intern(v))
        };
        if a == b {
            return Err(GraphError::SelfLoop { vertex: a as u64 });
        }
        self.num_vertices = self.num_vertices.max(a.max(b) as usize + 1);
        self.add_edge(layer, a, b)
    }

    /// Bulk edge insertion for one layer.
    pub fn add_edges(&mut self, layer: Layer, edges: &[(Vertex, Vertex)]) -> Result<()> {
        for &(u, v) in edges {
            self.add_edge(layer, u, v)?;
        }
        Ok(())
    }

    /// Total number of edge insertions so far (before deduplication).
    pub fn pending_edges(&self) -> usize {
        self.edges.iter().map(|e| e.len()).sum()
    }

    /// Finalizes the builder into an immutable [`MultiLayerGraph`].
    pub fn build(self) -> MultiLayerGraph {
        let n = self.num_vertices;
        let layers: Vec<Csr> = self.edges.iter().map(|e| Csr::from_edges(n, e)).collect();
        let vertex_labels = self.labels.map(|l| l.names);
        MultiLayerGraph::from_parts(layers, vertex_labels, self.layer_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_mode_build() {
        let mut b = MultiLayerGraphBuilder::new(4, 2);
        b.add_edge(0, 0, 1).unwrap();
        b.add_edge(0, 1, 2).unwrap();
        b.add_edge(1, 2, 3).unwrap();
        let g = b.build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_layers(), 2);
        assert_eq!(g.layer(0).num_edges(), 2);
        assert_eq!(g.layer(1).num_edges(), 1);
    }

    #[test]
    fn rejects_out_of_range_vertex_in_index_mode() {
        let mut b = MultiLayerGraphBuilder::new(3, 1);
        let err = b.add_edge(0, 0, 7).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn rejects_bad_layer_and_self_loop() {
        let mut b = MultiLayerGraphBuilder::new(3, 1);
        assert!(matches!(b.add_edge(5, 0, 1), Err(GraphError::LayerOutOfRange { .. })));
        assert!(matches!(b.add_edge(0, 1, 1), Err(GraphError::SelfLoop { .. })));
    }

    #[test]
    fn label_mode_interns_and_grows() {
        let mut b = MultiLayerGraphBuilder::with_labels(2);
        b.add_labeled_edge(0, "alice", "bob").unwrap();
        b.add_labeled_edge(1, "bob", "carol").unwrap();
        b.add_labeled_edge(0, "alice", "carol").unwrap();
        let g = b.build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.vertex_label(0), Some("alice"));
        assert_eq!(g.vertex_label(2), Some("carol"));
        assert_eq!(g.layer(0).num_edges(), 2);
        assert_eq!(g.layer(1).num_edges(), 1);
    }

    #[test]
    fn label_mode_rejects_self_loop_by_label() {
        let mut b = MultiLayerGraphBuilder::with_labels(1);
        assert!(matches!(b.add_labeled_edge(0, "x", "x"), Err(GraphError::SelfLoop { .. })));
    }

    #[test]
    fn labeled_edge_on_index_builder_fails() {
        let mut b = MultiLayerGraphBuilder::new(3, 1);
        assert!(matches!(b.add_labeled_edge(0, "a", "b"), Err(GraphError::InvalidArgument(_))));
    }

    #[test]
    fn layer_names_are_applied() {
        let mut b = MultiLayerGraphBuilder::new(2, 3);
        b.set_layer_names(&["y2001", "y2002"]);
        let g = b.build();
        assert_eq!(g.layer_name(0), "y2001");
        assert_eq!(g.layer_name(1), "y2002");
        assert_eq!(g.layer_name(2), "layer2");
    }

    #[test]
    fn pending_edges_counts_raw_insertions() {
        let mut b = MultiLayerGraphBuilder::new(3, 1);
        b.add_edges(0, &[(0, 1), (1, 0), (1, 2)]).unwrap();
        assert_eq!(b.pending_edges(), 3);
        let g = b.build();
        assert_eq!(g.layer(0).num_edges(), 2);
    }
}
