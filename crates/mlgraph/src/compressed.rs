//! [`CompressedVertexSet`] and [`CompressedSubgraph`]: roaring-style
//! compressed bitsets for huge sparse universes.
//!
//! The flat [`VertexSet`] spends `⌈n/64⌉` words regardless of how many
//! vertices are present, and [`crate::DenseSubgraph`] spends
//! `l · m · ⌈m/64⌉` words on its adjacency rows — at a million-vertex
//! universe that is terabytes and simply cannot exist. This module stores a
//! set as a sorted directory of 4096-bit **blocks**, each held in one of
//! two containers:
//!
//! * **sparse** — a sorted `Vec<u16>` of in-block offsets (≤ 256 members);
//! * **dense** — a 64-word bitmap (> 256 members), whose word ops dispatch
//!   through the same [`crate::kernels::BitKernel`] as the flat sets.
//!
//! Empty blocks are not stored at all, so memory tracks the membership
//! (2 bytes per sparse member, 512 bytes per dense block) instead of the
//! universe. The container form is canonical — sparse iff the block holds
//! ≤ [`SPARSE_MAX`] members — so structural equality is set equality.
//!
//! Every operation is **bit-identical** to the flat representation: the
//! property suite in `crates/mlgraph/tests/compressed_property.rs` checks
//! each op against [`VertexSet`] under every available kernel.

use crate::bitset::VertexSet;
use crate::graph::MultiLayerGraph;
use crate::kernels::{kernel, BitKernel};
use crate::{Layer, Vertex};

/// Bits covered by one block (64 words).
pub const BLOCK_BITS: usize = 4096;
/// Words per dense container.
const BLOCK_WORDS: usize = BLOCK_BITS / 64;
/// Largest member count a sparse container holds: at 2 bytes per entry,
/// 256 entries is the 512-byte break-even against a dense bitmap.
pub const SPARSE_MAX: usize = 256;

/// One block's members, in the canonical form for its cardinality.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Container {
    /// Sorted in-block offsets (`0..BLOCK_BITS`), at most [`SPARSE_MAX`].
    Sparse(Vec<u16>),
    /// 64-word bitmap, more than [`SPARSE_MAX`] bits set.
    Dense(Box<[u64; BLOCK_WORDS]>),
}

impl Container {
    fn len(&self) -> usize {
        match self {
            Container::Sparse(ids) => ids.len(),
            Container::Dense(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    fn contains(&self, offset: u16) -> bool {
        match self {
            Container::Sparse(ids) => ids.binary_search(&offset).is_ok(),
            Container::Dense(words) => (words[offset as usize / 64] >> (offset % 64)) & 1 == 1,
        }
    }

    /// Heap bytes held by this container.
    fn heap_bytes(&self) -> usize {
        match self {
            Container::Sparse(ids) => ids.capacity() * 2,
            Container::Dense(_) => BLOCK_WORDS * 8,
        }
    }

    /// Canonicalizes a sorted offset list into the container for its size.
    fn from_sorted(ids: Vec<u16>) -> Container {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "offsets must be strictly ascending");
        if ids.len() <= SPARSE_MAX {
            Container::Sparse(ids)
        } else {
            let mut words = Box::new([0u64; BLOCK_WORDS]);
            for &id in &ids {
                words[id as usize / 64] |= 1u64 << (id % 64);
            }
            Container::Dense(words)
        }
    }

    /// Canonicalizes a bitmap into the container for `count` set bits.
    fn from_words(words: Box<[u64; BLOCK_WORDS]>, count: usize) -> Container {
        if count > SPARSE_MAX {
            return Container::Dense(words);
        }
        let mut ids = Vec::with_capacity(count);
        for (wi, &w) in words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                ids.push((wi * 64 + bits.trailing_zeros() as usize) as u16);
                bits &= bits - 1;
            }
        }
        Container::Sparse(ids)
    }
}

/// A non-empty block: which 4096-bit span it covers and its members.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Block {
    /// Block index: covers global ids `index * BLOCK_BITS ..`.
    index: u32,
    container: Container,
}

/// A compressed set of vertices drawn from a fixed universe `0..capacity`,
/// with the same membership semantics as [`VertexSet`] but memory
/// proportional to the occupied blocks instead of the universe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompressedVertexSet {
    /// Non-empty blocks, ascending by block index.
    blocks: Vec<Block>,
    capacity: usize,
    len: usize,
}

impl CompressedVertexSet {
    /// Creates an empty set over the universe `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        CompressedVertexSet { blocks: Vec::new(), capacity, len: 0 }
    }

    /// Creates a set containing every vertex of the universe `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut blocks = Vec::with_capacity(capacity.div_ceil(BLOCK_BITS));
        let mut remaining = capacity;
        let mut index = 0u32;
        while remaining > 0 {
            let in_block = remaining.min(BLOCK_BITS);
            let container = if in_block > SPARSE_MAX {
                let mut words = Box::new([0u64; BLOCK_WORDS]);
                for w in 0..in_block / 64 {
                    words[w] = !0;
                }
                if !in_block.is_multiple_of(64) {
                    words[in_block / 64] = (1u64 << (in_block % 64)) - 1;
                }
                Container::Dense(words)
            } else {
                Container::Sparse((0..in_block as u16).collect())
            };
            blocks.push(Block { index, container });
            remaining -= in_block;
            index += 1;
        }
        CompressedVertexSet { blocks, capacity, len: capacity }
    }

    /// Builds a set from an iterator of vertices over `0..capacity`.
    /// Duplicates are allowed.
    pub fn from_iter<I: IntoIterator<Item = Vertex>>(capacity: usize, iter: I) -> Self {
        let mut s = CompressedVertexSet::new(capacity);
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// Builds a set from a strictly ascending run of vertex ids in one
    /// streaming pass (no per-insert directory searches) — the fast path
    /// for adjacency rows, which are already sorted.
    pub fn from_sorted_run(capacity: usize, run: &[Vertex]) -> Self {
        // Count the blocks first so both the directory and each container
        // allocate exactly — rows are immutable after the build, so slack
        // capacity would be pure waste at scale.
        let mut num_blocks = 0usize;
        let mut prev_block = u32::MAX;
        for &v in run {
            debug_assert!((v as usize) < capacity, "vertex {v} out of capacity");
            let b = v / BLOCK_BITS as u32;
            if b != prev_block {
                num_blocks += 1;
                prev_block = b;
            }
        }
        let mut blocks = Vec::with_capacity(num_blocks);
        let mut i = 0usize;
        while i < run.len() {
            let index = run[i] / BLOCK_BITS as u32;
            let end = i + run[i..].partition_point(|&v| v / BLOCK_BITS as u32 == index);
            let mut ids = Vec::with_capacity(end - i);
            for &v in &run[i..end] {
                debug_assert!(ids.last().copied() < Some((v % BLOCK_BITS as u32) as u16));
                ids.push((v % BLOCK_BITS as u32) as u16);
            }
            blocks.push(Block { index, container: Container::from_sorted(ids) });
            i = end;
        }
        let len = run.len();
        CompressedVertexSet { blocks, capacity, len }
    }

    /// The size of the universe this set draws from.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of vertices currently in the set (O(1), cached).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of non-empty blocks in the directory.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Approximate heap bytes held (directory + containers).
    pub fn heap_bytes(&self) -> usize {
        self.blocks.capacity() * std::mem::size_of::<Block>()
            + self.blocks.iter().map(|b| b.container.heap_bytes()).sum::<usize>()
    }

    fn find_block(&self, index: u32) -> Result<usize, usize> {
        self.blocks.binary_search_by_key(&index, |b| b.index)
    }

    /// Tests membership of `v`.
    pub fn contains(&self, v: Vertex) -> bool {
        debug_assert!((v as usize) < self.capacity, "vertex {v} out of capacity {}", self.capacity);
        match self.find_block(v / BLOCK_BITS as u32) {
            Ok(b) => self.blocks[b].container.contains((v % BLOCK_BITS as u32) as u16),
            Err(_) => false,
        }
    }

    /// Inserts `v`; returns `true` if it was not already present.
    pub fn insert(&mut self, v: Vertex) -> bool {
        assert!((v as usize) < self.capacity, "vertex {v} out of capacity {}", self.capacity);
        let index = v / BLOCK_BITS as u32;
        let offset = (v % BLOCK_BITS as u32) as u16;
        let slot = match self.find_block(index) {
            Ok(b) => b,
            Err(b) => {
                self.blocks.insert(b, Block { index, container: Container::Sparse(Vec::new()) });
                b
            }
        };
        let container = &mut self.blocks[slot].container;
        let inserted = match container {
            Container::Sparse(ids) => match ids.binary_search(&offset) {
                Ok(_) => false,
                Err(pos) => {
                    ids.insert(pos, offset);
                    if ids.len() > SPARSE_MAX {
                        *container = Container::from_sorted(std::mem::take(ids));
                    }
                    true
                }
            },
            Container::Dense(words) => {
                let w = &mut words[offset as usize / 64];
                let mask = 1u64 << (offset % 64);
                let fresh = *w & mask == 0;
                *w |= mask;
                fresh
            }
        };
        if inserted {
            self.len += 1;
        }
        inserted
    }

    /// Removes `v`; returns `true` if it was present.
    pub fn remove(&mut self, v: Vertex) -> bool {
        assert!((v as usize) < self.capacity, "vertex {v} out of capacity {}", self.capacity);
        let index = v / BLOCK_BITS as u32;
        let offset = (v % BLOCK_BITS as u32) as u16;
        let Ok(slot) = self.find_block(index) else {
            return false;
        };
        let container = &mut self.blocks[slot].container;
        let removed = match container {
            Container::Sparse(ids) => match ids.binary_search(&offset) {
                Ok(pos) => {
                    ids.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Container::Dense(words) => {
                let w = &mut words[offset as usize / 64];
                let mask = 1u64 << (offset % 64);
                if *w & mask == 0 {
                    false
                } else {
                    *w &= !mask;
                    let count = container.len();
                    if count <= SPARSE_MAX {
                        let Container::Dense(words) =
                            std::mem::replace(container, Container::Sparse(Vec::new()))
                        else {
                            unreachable!()
                        };
                        *container = Container::from_words(words, count);
                    }
                    true
                }
            }
        };
        if removed {
            self.len -= 1;
            if self.blocks[slot].container.len() == 0 {
                self.blocks.remove(slot);
            }
        }
        removed
    }

    /// Removes every vertex (the universe size is unchanged).
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.len = 0;
    }

    /// Iterates the members in increasing vertex order.
    pub fn iter(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.blocks.iter().flat_map(|b| {
            let base = b.index * BLOCK_BITS as u32;
            let ids: Vec<u16> = match &b.container {
                Container::Sparse(ids) => ids.clone(),
                Container::Dense(words) => {
                    let mut ids = Vec::new();
                    for (wi, &w) in words.iter().enumerate() {
                        let mut bits = w;
                        while bits != 0 {
                            ids.push((wi * 64 + bits.trailing_zeros() as usize) as u16);
                            bits &= bits - 1;
                        }
                    }
                    ids
                }
            };
            ids.into_iter().map(move |id| base + id as u32)
        })
    }

    /// Collects the members into a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<Vertex> {
        self.iter().collect()
    }

    /// Size of the intersection with `other`, via the dispatched kernel.
    /// Panics if the capacities differ.
    pub fn and_count(&self, other: &CompressedVertexSet) -> usize {
        self.and_count_with(kernel(), other)
    }

    /// [`CompressedVertexSet::and_count`] on an explicit kernel (the
    /// property suite compares kernels inside one process).
    pub fn and_count_with(&self, k: &dyn BitKernel, other: &CompressedVertexSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch in and_count");
        let mut count = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.blocks.len() && j < other.blocks.len() {
            let (a, b) = (&self.blocks[i], &other.blocks[j]);
            match a.index.cmp(&b.index) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += container_and_count(k, &a.container, &b.container);
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Overwrites this set with `a ∩ b`, via the dispatched kernel. Panics
    /// if any of the three capacities differ.
    pub fn assign_intersection(&mut self, a: &CompressedVertexSet, b: &CompressedVertexSet) {
        self.assign_intersection_with(kernel(), a, b);
    }

    /// [`CompressedVertexSet::assign_intersection`] on an explicit kernel.
    pub fn assign_intersection_with(
        &mut self,
        k: &dyn BitKernel,
        a: &CompressedVertexSet,
        b: &CompressedVertexSet,
    ) {
        assert_eq!(a.capacity, b.capacity, "capacity mismatch in assign_intersection");
        assert_eq!(self.capacity, a.capacity, "capacity mismatch in assign_intersection");
        self.blocks.clear();
        let mut len = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.blocks.len() && j < b.blocks.len() {
            let (ba, bb) = (&a.blocks[i], &b.blocks[j]);
            match ba.index.cmp(&bb.index) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if let Some(container) = container_intersection(k, &ba.container, &bb.container)
                    {
                        len += container.len();
                        self.blocks.push(Block { index: ba.index, container });
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        self.len = len;
    }

    /// Size of the intersection with a flat word-packed bitset (the same
    /// packing as [`VertexSet::words`]); words past the slice end are
    /// treated as zero. This is the compressed adjacency row's
    /// degree-within query against a flat candidate set.
    pub fn and_count_words(&self, words: &[u64]) -> usize {
        self.and_count_words_with(kernel(), words)
    }

    /// [`CompressedVertexSet::and_count_words`] on an explicit kernel.
    pub fn and_count_words_with(&self, k: &dyn BitKernel, words: &[u64]) -> usize {
        let mut count = 0usize;
        for block in &self.blocks {
            let word_base = block.index as usize * BLOCK_WORDS;
            if word_base >= words.len() {
                break;
            }
            let window = &words[word_base..words.len().min(word_base + BLOCK_WORDS)];
            match &block.container {
                Container::Sparse(ids) => {
                    count += ids
                        .iter()
                        .filter(|&&id| {
                            let w = id as usize / 64;
                            w < window.len() && (window[w] >> (id % 64)) & 1 == 1
                        })
                        .count();
                }
                Container::Dense(bits) => count += k.and_count(&bits[..], window),
            }
        }
        count
    }

    /// Calls `f` for each member whose bit is set in the flat word-packed
    /// bitset `words`, in increasing vertex order — the compressed
    /// cascade's `row ∧ alive` walk.
    pub fn for_each_in<F: FnMut(Vertex)>(&self, words: &[u64], mut f: F) {
        for block in &self.blocks {
            let word_base = block.index as usize * BLOCK_WORDS;
            if word_base >= words.len() {
                break;
            }
            let base = block.index * BLOCK_BITS as u32;
            let window = &words[word_base..words.len().min(word_base + BLOCK_WORDS)];
            match &block.container {
                Container::Sparse(ids) => {
                    for &id in ids {
                        let w = id as usize / 64;
                        if w < window.len() && (window[w] >> (id % 64)) & 1 == 1 {
                            f(base + id as u32);
                        }
                    }
                }
                Container::Dense(bits) => {
                    for (wi, &row_word) in bits.iter().enumerate().take(window.len()) {
                        let mut live = row_word & window[wi];
                        while live != 0 {
                            f(base + (wi * 64) as u32 + live.trailing_zeros());
                            live &= live - 1;
                        }
                    }
                }
            }
        }
    }
}

/// Intersection count of two same-block containers.
fn container_and_count(k: &dyn BitKernel, a: &Container, b: &Container) -> usize {
    match (a, b) {
        (Container::Sparse(x), Container::Sparse(y)) => {
            crate::intersect::sorted_intersect_count(x, y)
        }
        (Container::Sparse(ids), Container::Dense(words))
        | (Container::Dense(words), Container::Sparse(ids)) => {
            ids.iter().filter(|&&id| (words[id as usize / 64] >> (id % 64)) & 1 == 1).count()
        }
        (Container::Dense(x), Container::Dense(y)) => k.and_count(&x[..], &y[..]),
    }
}

/// Intersection of two same-block containers, canonicalized; `None` when
/// empty.
fn container_intersection(k: &dyn BitKernel, a: &Container, b: &Container) -> Option<Container> {
    let out = match (a, b) {
        (Container::Sparse(x), Container::Sparse(y)) => {
            let mut ids = Vec::new();
            crate::intersect::sorted_intersect_into(x, y, &mut ids);
            Container::Sparse(ids)
        }
        (Container::Sparse(ids), Container::Dense(words))
        | (Container::Dense(words), Container::Sparse(ids)) => Container::Sparse(
            ids.iter()
                .copied()
                .filter(|&id| (words[id as usize / 64] >> (id % 64)) & 1 == 1)
                .collect(),
        ),
        (Container::Dense(x), Container::Dense(y)) => {
            let mut words = Box::new([0u64; BLOCK_WORDS]);
            let count = k.and_assign_count(&mut words[..], &x[..], &y[..]);
            Container::from_words(words, count)
        }
    };
    (out.len() > 0).then_some(out)
}

/// A multi-layer subgraph over a re-indexed universe `0..m` whose
/// adjacency rows are [`CompressedVertexSet`]s — the third index regime,
/// for universes too large for [`crate::DenseSubgraph`]'s flat rows.
///
/// Memory is proportional to the within-universe edges (plus a small
/// per-row directory), not `m²`, while degree-within queries stay
/// word-wise on the occupied blocks.
#[derive(Clone, Debug)]
pub struct CompressedSubgraph {
    /// New index → original vertex id (ascending).
    mapping: Vec<Vertex>,
    /// Original vertex id → new index (`u32::MAX` outside the universe).
    inverse: Vec<u32>,
    /// Number of layers.
    num_layers: usize,
    /// Rows: `rows[layer * m + v]`.
    rows: Vec<CompressedVertexSet>,
    /// Measured heap bytes of the rows (for budget accounting).
    bytes: usize,
}

impl CompressedSubgraph {
    /// Conservative byte estimate for a compressed build over
    /// `universe_len` vertices, `layers` layers, and `total_degree` row
    /// entries (the sum of within-or-without-universe degrees the planner
    /// already has); used to budget-gate construction.
    pub fn estimate_bytes(universe_len: usize, layers: usize, total_degree: usize) -> usize {
        // Per row: the set struct + one directory slot; per entry: a sparse
        // slot, doubled for container slack and dense promotions.
        layers * universe_len * 96 + total_degree * 4
    }

    /// Builds the compressed re-indexed subgraph of `g` induced by
    /// `universe`.
    pub fn build(g: &MultiLayerGraph, universe: &VertexSet) -> Self {
        let mapping: Vec<Vertex> = universe.to_vec();
        let m = mapping.len();
        let mut inverse = vec![u32::MAX; g.num_vertices()];
        for (new, &old) in mapping.iter().enumerate() {
            inverse[old as usize] = new as u32;
        }
        let num_layers = g.num_layers();
        let mut rows = Vec::with_capacity(num_layers * m);
        let mut run: Vec<Vertex> = Vec::new();
        let mut bytes = 0usize;
        for layer in 0..num_layers {
            let csr = g.layer(layer);
            for &old_u in &mapping {
                run.clear();
                // Neighbors are sorted by old id and the mapping is
                // order-preserving, so the re-indexed run stays ascending.
                for &old_v in csr.neighbors(old_u) {
                    let new_v = inverse[old_v as usize];
                    if new_v != u32::MAX {
                        run.push(new_v);
                    }
                }
                let row = CompressedVertexSet::from_sorted_run(m, &run);
                bytes += row.heap_bytes() + std::mem::size_of::<CompressedVertexSet>();
                rows.push(row);
            }
        }
        CompressedSubgraph { mapping, inverse, num_layers, rows, bytes }
    }

    /// Universe size `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.mapping.len()
    }

    /// Whether the universe is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mapping.is_empty()
    }

    /// Number of layers carried.
    #[inline]
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Measured heap bytes of the adjacency rows.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The adjacency row of re-indexed vertex `v` on `layer`.
    #[inline]
    pub fn row(&self, layer: Layer, v: Vertex) -> &CompressedVertexSet {
        &self.rows[layer * self.len() + v as usize]
    }

    /// `|N_layer(v) ∩ set|` via block-wise intersect-count. `set` must be
    /// over the re-indexed universe `0..m`.
    #[inline]
    pub fn degree_within(&self, layer: Layer, v: Vertex, set: &VertexSet) -> usize {
        self.row(layer, v).and_count_words(set.words())
    }

    /// Compresses a set over the original universe into re-indexed space,
    /// writing into `out` (capacity `m`). Vertices outside the universe
    /// are dropped.
    pub fn compress_into(&self, set: &VertexSet, out: &mut VertexSet) {
        out.clear();
        for v in set.iter() {
            let new = self.inverse[v as usize];
            if new != u32::MAX {
                out.insert(new);
            }
        }
    }

    /// Expands a re-indexed set back to the original universe, writing
    /// into `out` (capacity = original `n`).
    pub fn expand_into(&self, set: &VertexSet, out: &mut VertexSet) {
        out.clear();
        for v in set.iter() {
            out.insert(self.mapping[v as usize]);
        }
    }

    /// A fresh flat set over the re-indexed universe (the lattice walk's
    /// candidate sets stay flat — at `m` bits each they are cheap; only
    /// the `l·m` adjacency rows need compression).
    pub fn new_set(&self) -> VertexSet {
        VertexSet::new(self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MultiLayerGraphBuilder;

    #[test]
    fn insert_remove_promote_demote_roundtrip() {
        let mut s = CompressedVertexSet::new(10_000);
        // Fill one block past the sparse→dense boundary.
        for v in 0..(SPARSE_MAX as u32 + 40) {
            assert!(s.insert(v * 2));
        }
        assert!(!s.insert(0));
        assert_eq!(s.len(), SPARSE_MAX + 40);
        assert!(s.contains(2));
        assert!(!s.contains(1));
        assert_eq!(s.num_blocks(), 1);
        // Remove back below the boundary: the container demotes and stays
        // equal to a freshly built set (canonical form).
        for v in 0..80u32 {
            assert!(s.remove(v * 2));
        }
        let rebuilt =
            CompressedVertexSet::from_iter(10_000, (80..(SPARSE_MAX as u32 + 40)).map(|v| v * 2));
        assert_eq!(s, rebuilt);
    }

    #[test]
    fn matches_flat_on_boundaries() {
        // Empty, full, one-past-a-block, partial trailing block.
        for capacity in [0usize, 1, 63, 64, BLOCK_BITS - 1, BLOCK_BITS, BLOCK_BITS + 1, 9000] {
            let full = CompressedVertexSet::full(capacity);
            let flat = VertexSet::full(capacity);
            assert_eq!(full.len(), flat.len(), "full capacity={capacity}");
            assert_eq!(full.to_vec(), flat.to_vec(), "full capacity={capacity}");
            assert!(CompressedVertexSet::new(capacity).is_empty());
        }
    }

    #[test]
    fn from_sorted_run_matches_from_iter() {
        let run: Vec<u32> = (0..600u32).map(|i| i * 17 % 9001).collect();
        let mut sorted = run.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let a = CompressedVertexSet::from_sorted_run(9001, &sorted);
        let b = CompressedVertexSet::from_iter(9001, run);
        assert_eq!(a, b);
        assert_eq!(a.len(), sorted.len());
    }

    #[test]
    fn intersection_ops_match_flat() {
        let xs: Vec<u32> = (0..8192u32).filter(|v| v % 3 == 0).collect();
        let ys: Vec<u32> = (0..8192u32).filter(|v| v % 5 < 2).collect();
        let ca = CompressedVertexSet::from_iter(8192, xs.iter().copied());
        let cb = CompressedVertexSet::from_iter(8192, ys.iter().copied());
        let fa = VertexSet::from_iter(8192, xs);
        let fb = VertexSet::from_iter(8192, ys);
        assert_eq!(ca.and_count(&cb), fa.intersection_len(&fb));
        let mut out = CompressedVertexSet::new(8192);
        out.assign_intersection(&ca, &cb);
        assert_eq!(out.to_vec(), fa.intersection(&fb).to_vec());
        assert_eq!(out.len(), fa.intersection(&fb).len());
        assert_eq!(ca.and_count_words(fb.words()), fa.intersection_len(&fb));
        let mut seen = Vec::new();
        ca.for_each_in(fb.words(), |v| seen.push(v));
        assert_eq!(seen, fa.intersection(&fb).to_vec());
    }

    #[test]
    fn heap_bytes_track_membership_not_universe() {
        let sparse = CompressedVertexSet::from_iter(1_000_000, [3u32, 70_000, 999_999]);
        assert!(sparse.heap_bytes() < 4096, "bytes: {}", sparse.heap_bytes());
        assert_eq!(sparse.num_blocks(), 3);
    }

    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(10, 2);
        for (u, v) in [(1, 3), (3, 5), (1, 5), (5, 9)] {
            b.add_edge(0, u, v).unwrap();
        }
        for (u, v) in [(1, 9), (3, 9), (0, 2)] {
            b.add_edge(1, u, v).unwrap();
        }
        b.build()
    }

    #[test]
    fn subgraph_matches_dense_semantics() {
        let g = graph();
        let universe = VertexSet::from_iter(10, [1, 3, 5, 9]);
        let sub = CompressedSubgraph::build(&g, &universe);
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.num_layers(), 2);
        assert!(sub.bytes() > 0);
        // New ids: 1→0, 3→1, 5→2, 9→3 — same as the dense build.
        let all = VertexSet::full(4);
        assert_eq!(sub.degree_within(0, 0, &all), 2);
        assert_eq!(sub.degree_within(0, 2, &all), 3);
        assert_eq!(sub.degree_within(1, 3, &all), 2);
        let without_9 = VertexSet::from_iter(4, [0, 1, 2]);
        assert_eq!(sub.degree_within(0, 2, &without_9), 2);
        let original = VertexSet::from_iter(10, [3, 9, 0]);
        let mut compressed = sub.new_set();
        sub.compress_into(&original, &mut compressed);
        assert_eq!(compressed.to_vec(), vec![1, 3]);
        let mut expanded = VertexSet::new(10);
        sub.expand_into(&compressed, &mut expanded);
        assert_eq!(expanded.to_vec(), vec![3, 9]);
    }

    #[test]
    fn estimate_bounds_measured_bytes() {
        let g = graph();
        let universe = VertexSet::full(10);
        let sub = CompressedSubgraph::build(&g, &universe);
        let total_degree: usize =
            (0..2).map(|l| (0..10).map(|v| g.layer(l).degree(v)).sum::<usize>()).sum();
        assert!(sub.bytes() <= CompressedSubgraph::estimate_bytes(10, 2, total_degree));
    }
}
