//! [`Csr`]: a compressed sparse row representation of one undirected layer.
//!
//! Neighbor lists are sorted and deduplicated, self loops are dropped, and
//! every undirected edge is stored in both endpoints' lists. This is the
//! per-layer storage used by [`crate::MultiLayerGraph`].

use crate::bitset::VertexSet;
use crate::Vertex;
use serde::{Deserialize, Serialize};

/// A single undirected graph layer in CSR form.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated, per-vertex sorted adjacency lists.
    neighbors: Vec<Vertex>,
    /// Number of undirected edges (each edge counted once).
    num_edges: usize,
}

impl Csr {
    /// Builds a CSR layer from an undirected edge list over `n` vertices.
    ///
    /// Duplicate edges and self loops are silently dropped; the edge
    /// direction of each pair is irrelevant.
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Self {
        let mut degree = vec![0usize; n];
        let mut clean: Vec<(Vertex, Vertex)> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            debug_assert!((u as usize) < n && (v as usize) < n, "edge ({u},{v}) out of range");
            if u == v {
                continue;
            }
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            clean.push((a, b));
        }
        clean.sort_unstable();
        clean.dedup();
        for &(u, v) in &clean {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as Vertex; offsets[n]];
        for &(u, v) in &clean {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Csr { offsets, neighbors, num_edges: clean.len() }
    }

    /// Builds an empty layer (no edges) over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Csr { offsets: vec![0; n + 1], neighbors: Vec::new(), num_edges: 0 }
    }

    /// Rebuilds this layer with an edge delta applied, in one pass over the
    /// adjacency arrays (no global re-sort of the surviving edges).
    ///
    /// Both lists must be canonical (`u < v`), deduplicated, and *effective*:
    /// every inserted edge absent from this layer, every deleted edge present,
    /// and the two lists disjoint. [`crate::EdgeBatch`] validation establishes
    /// exactly these invariants before calling in here.
    pub fn rebuild_with_delta(
        &self,
        inserted: &[(Vertex, Vertex)],
        deleted: &[(Vertex, Vertex)],
    ) -> Csr {
        let n = self.num_vertices();
        // Mirror each canonical delta edge into both endpoints' lists.
        let mut ins: Vec<Vec<Vertex>> = vec![Vec::new(); n];
        for &(u, v) in inserted {
            debug_assert!(u < v && (v as usize) < n, "insert ({u},{v}) not canonical/in range");
            debug_assert!(!self.has_edge(u, v), "insert ({u},{v}) already present");
            ins[u as usize].push(v);
            ins[v as usize].push(u);
        }
        let mut del: Vec<Vec<Vertex>> = vec![Vec::new(); n];
        for &(u, v) in deleted {
            debug_assert!(u < v && (v as usize) < n, "delete ({u},{v}) not canonical/in range");
            debug_assert!(self.has_edge(u, v), "delete ({u},{v}) not present");
            del[u as usize].push(v);
            del[v as usize].push(u);
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + self.degree(v as Vertex) + ins[v].len() - del[v].len();
        }
        let mut neighbors = vec![0 as Vertex; offsets[n]];
        for v in 0..n {
            let add = &mut ins[v];
            add.sort_unstable();
            let drop = &mut del[v];
            drop.sort_unstable();
            // Merge the old sorted list with the sorted inserts, skipping the
            // sorted deletes; all three are disjoint by the caller's contract.
            let out = &mut neighbors[offsets[v]..offsets[v + 1]];
            let mut k = 0usize;
            let mut ai = 0usize;
            let mut di = 0usize;
            for &u in self.neighbors(v as Vertex) {
                while ai < add.len() && add[ai] < u {
                    out[k] = add[ai];
                    k += 1;
                    ai += 1;
                }
                if di < drop.len() && drop[di] == u {
                    di += 1;
                    continue;
                }
                out[k] = u;
                k += 1;
            }
            out[k..].copy_from_slice(&add[ai..]);
        }
        Csr { offsets, neighbors, num_edges: self.num_edges + inserted.len() - deleted.len() }
    }

    /// Number of vertices in the universe.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges in this layer.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `v` in this layer.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted slice of neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `(u, v)` exists.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        let (probe, target) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(probe).binary_search(&target).is_ok()
    }

    /// Degree of `v` counting only neighbors contained in `within`.
    ///
    /// The adjacency run is tested word-wise against the set's packed
    /// words through the dispatched [`crate::kernels::BitKernel`] — the
    /// CSR peel's inner loop — instead of per-neighbor `contains` calls.
    #[inline]
    pub fn degree_within(&self, v: Vertex, within: &VertexSet) -> usize {
        crate::kernels::kernel().sorted_and_count(self.neighbors(v), within.words())
    }

    /// Number of common neighbors of `u` and `v` (their adjacency runs
    /// intersected by [`crate::intersect::sorted_intersect_count`] —
    /// galloping when one run is much shorter, linear merge otherwise).
    pub fn common_degree(&self, u: Vertex, v: Vertex) -> usize {
        crate::intersect::sorted_intersect_count(self.neighbors(u), self.neighbors(v))
    }

    /// Iterates every undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        (0..self.num_vertices() as Vertex)
            .flat_map(move |u| self.neighbors(u).iter().copied().map(move |v| (u, v)))
            .filter(|&(u, v)| u < v)
    }

    /// Maximum degree over all vertices, or 0 for an empty universe.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as Vertex).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Number of edges with both endpoints inside `within`.
    pub fn edges_within(&self, within: &VertexSet) -> usize {
        within
            .iter()
            .map(|u| self.neighbors(u).iter().filter(|&&v| v > u && within.contains(v)).count())
            .sum()
    }

    /// Builds the subgraph induced by `within`, re-indexed to `0..within.len()`.
    ///
    /// Returns the induced CSR and the mapping from new index to original
    /// vertex id (sorted ascending).
    pub fn induced_subgraph(&self, within: &VertexSet) -> (Csr, Vec<Vertex>) {
        let mapping: Vec<Vertex> = within.to_vec();
        let mut inverse = vec![u32::MAX; self.num_vertices()];
        for (new, &old) in mapping.iter().enumerate() {
            inverse[old as usize] = new as u32;
        }
        let mut edges = Vec::new();
        for &old_u in &mapping {
            for &old_v in self.neighbors(old_u) {
                if old_v > old_u && within.contains(old_v) {
                    edges.push((inverse[old_u as usize], inverse[old_v as usize]));
                }
            }
        }
        (Csr::from_edges(mapping.len(), &edges), mapping)
    }

    /// Checks structural invariants; used by tests and the binary loader.
    pub fn validate(&self) -> bool {
        let n = self.num_vertices();
        if self.offsets[0] != 0 || *self.offsets.last().unwrap() != self.neighbors.len() {
            return false;
        }
        let mut edge_count = 0usize;
        for v in 0..n as Vertex {
            let ns = self.neighbors(v);
            if !ns.windows(2).all(|w| w[0] < w[1]) {
                return false;
            }
            for &u in ns {
                if u as usize >= n || u == v {
                    return false;
                }
                if self.neighbors(u).binary_search(&v).is_err() {
                    return false;
                }
                if u > v {
                    edge_count += 1;
                }
            }
        }
        edge_count == self.num_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Csr {
        // 0-1, 1-2, 0-2 triangle; 3 pendant attached to 2; vertex 4 isolated.
        Csr::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 2)])
    }

    #[test]
    fn basic_shape() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert!(g.validate());
    }

    #[test]
    fn duplicate_and_self_loops_dropped() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
        assert!(g.validate());
    }

    #[test]
    fn has_edge_symmetric() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(3, 2));
        assert!(!g.has_edge(3, 0));
        assert!(!g.has_edge(4, 0));
    }

    #[test]
    fn degree_within_mask() {
        let g = triangle_plus_pendant();
        let s = VertexSet::from_iter(5, [0, 1, 2]);
        assert_eq!(g.degree_within(0, &s), 2);
        assert_eq!(g.degree_within(2, &s), 2);
        assert_eq!(g.degree_within(3, &s), 1);
        let empty = VertexSet::new(5);
        assert_eq!(g.degree_within(2, &empty), 0);
    }

    #[test]
    fn common_degree_counts_shared_neighbors() {
        let g = triangle_plus_pendant();
        assert_eq!(g.common_degree(0, 1), 1); // both adjacent to 2
        assert_eq!(g.common_degree(0, 2), 1); // both adjacent to 1
        assert_eq!(g.common_degree(0, 3), 1); // both adjacent to 2
        assert_eq!(g.common_degree(0, 4), 0);
    }

    #[test]
    fn edges_iterator_unique() {
        let g = triangle_plus_pendant();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn edges_within_counts_induced_edges() {
        let g = triangle_plus_pendant();
        let s = VertexSet::from_iter(5, [0, 1, 2]);
        assert_eq!(g.edges_within(&s), 3);
        let t = VertexSet::from_iter(5, [2, 3, 4]);
        assert_eq!(g.edges_within(&t), 1);
    }

    #[test]
    fn induced_subgraph_reindexes() {
        let g = triangle_plus_pendant();
        let s = VertexSet::from_iter(5, [1, 2, 3]);
        let (sub, mapping) = g.induced_subgraph(&s);
        assert_eq!(mapping, vec![1, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2);
        // new ids: 1->0, 2->1, 3->2
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
        assert!(sub.validate());
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.validate());
        let g0 = Csr::empty(0);
        assert_eq!(g0.num_vertices(), 0);
        assert!(g0.validate());
    }

    #[test]
    fn max_degree() {
        let g = triangle_plus_pendant();
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn rebuild_with_delta_matches_from_edges() {
        let g = triangle_plus_pendant();
        // Drop the pendant edge and one triangle side, add two new edges.
        let rebuilt = g.rebuild_with_delta(&[(0, 4), (3, 4)], &[(2, 3), (0, 1)]);
        let oracle = Csr::from_edges(5, &[(1, 2), (2, 0), (0, 4), (3, 4)]);
        assert_eq!(rebuilt, oracle);
        assert!(rebuilt.validate());
    }

    #[test]
    fn rebuild_with_delta_empty_and_refill() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let emptied = g.rebuild_with_delta(&[], &[(0, 1), (1, 2)]);
        assert_eq!(emptied, Csr::empty(3));
        let refilled = emptied.rebuild_with_delta(&[(0, 2)], &[]);
        assert_eq!(refilled, Csr::from_edges(3, &[(0, 2)]));
        assert!(refilled.validate());
    }

    #[test]
    fn rebuild_with_delta_noop_is_identity() {
        let g = triangle_plus_pendant();
        assert_eq!(g.rebuild_with_delta(&[], &[]), g);
    }
}
