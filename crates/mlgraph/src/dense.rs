//! [`DenseSubgraph`]: a re-indexed multi-layer subgraph with per-layer
//! adjacency bitsets, for word-level peeling over small vertex universes.
//!
//! The DCCS candidate generation peels thousands of layer subsets whose
//! candidate sets all live inside one small universe (the union of the
//! per-layer d-cores after preprocessing — typically a few hundred vertices
//! even when the graph has many thousands). On that shape, the dominant cost
//! of CSR peeling is scanning full adjacency lists with per-neighbor
//! membership tests. Re-indexing the universe to `0..m` and storing each
//! vertex's neighborhood as an `m`-bit row turns a degree-within query into
//! `popcount(row ∧ set)` — a handful of word operations — and lets the
//! cascade iterate `row ∧ alive` directly.
//!
//! Memory is `l · m · ⌈m/64⌉` words; callers should gate construction with
//! [`DenseSubgraph::words_required`] and fall back to CSR peeling when the
//! universe is too large for the budget.

use crate::bitset::VertexSet;
use crate::graph::MultiLayerGraph;
use crate::{Layer, Vertex};

/// A multi-layer subgraph over a re-indexed universe `0..m`, with one
/// adjacency bitset row per (layer, vertex).
#[derive(Clone, Debug)]
pub struct DenseSubgraph {
    /// New index → original vertex id (ascending).
    mapping: Vec<Vertex>,
    /// Original vertex id → new index (`u32::MAX` outside the universe).
    inverse: Vec<u32>,
    /// Words per adjacency row (`⌈m / 64⌉`).
    words_per_row: usize,
    /// Number of layers.
    num_layers: usize,
    /// Row-major rows: `adj[(layer * m + v) * words_per_row ..][..words_per_row]`.
    adj: Vec<u64>,
}

impl DenseSubgraph {
    /// Number of `u64` words a dense build over `universe_len` vertices and
    /// `layers` layers would allocate; use to budget-gate construction.
    pub fn words_required(universe_len: usize, layers: usize) -> usize {
        layers * universe_len * universe_len.div_ceil(64)
    }

    /// Builds the dense re-indexed subgraph of `g` induced by `universe`.
    pub fn build(g: &MultiLayerGraph, universe: &VertexSet) -> Self {
        let mapping: Vec<Vertex> = universe.to_vec();
        let m = mapping.len();
        let mut inverse = vec![u32::MAX; g.num_vertices()];
        for (new, &old) in mapping.iter().enumerate() {
            inverse[old as usize] = new as u32;
        }
        let words_per_row = m.div_ceil(64);
        let num_layers = g.num_layers();
        let mut adj = vec![0u64; num_layers * m * words_per_row];
        for layer in 0..num_layers {
            let csr = g.layer(layer);
            for (new_u, &old_u) in mapping.iter().enumerate() {
                let base = (layer * m + new_u) * words_per_row;
                let row = &mut adj[base..base + words_per_row];
                for &old_v in csr.neighbors(old_u) {
                    let new_v = inverse[old_v as usize];
                    if new_v != u32::MAX {
                        row[new_v as usize / 64] |= 1u64 << (new_v % 64);
                    }
                }
            }
        }
        DenseSubgraph { mapping, inverse, words_per_row, num_layers, adj }
    }

    /// Universe size `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.mapping.len()
    }

    /// Whether the universe is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mapping.is_empty()
    }

    /// Number of layers carried.
    #[inline]
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Words per adjacency row, `⌈m / 64⌉` — the unit of the word-batched
    /// cascade's removal masks.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The adjacency row of re-indexed vertex `v` on `layer`.
    #[inline]
    pub fn row(&self, layer: Layer, v: Vertex) -> &[u64] {
        let base = (layer * self.len() + v as usize) * self.words_per_row;
        &self.adj[base..base + self.words_per_row]
    }

    /// `|N_layer(v) ∩ set|` via word-level intersect-count. `set` must be
    /// over the re-indexed universe `0..m`.
    #[inline]
    pub fn degree_within(&self, layer: Layer, v: Vertex, set: &VertexSet) -> usize {
        set.intersection_len_words(self.row(layer, v))
    }

    /// Compresses a set over the original universe into re-indexed space,
    /// writing into `out` (capacity `m`). Vertices outside the universe are
    /// dropped.
    pub fn compress_into(&self, set: &VertexSet, out: &mut VertexSet) {
        out.clear();
        for v in set.iter() {
            let new = self.inverse[v as usize];
            if new != u32::MAX {
                out.insert(new);
            }
        }
    }

    /// Expands a re-indexed set back to the original universe, writing into
    /// `out` (capacity = original `n`).
    pub fn expand_into(&self, set: &VertexSet, out: &mut VertexSet) {
        out.clear();
        for v in set.iter() {
            out.insert(self.mapping[v as usize]);
        }
    }

    /// A fresh set over the re-indexed universe.
    pub fn new_set(&self) -> VertexSet {
        VertexSet::new(self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MultiLayerGraphBuilder;

    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(10, 2);
        for (u, v) in [(1, 3), (3, 5), (1, 5), (5, 9)] {
            b.add_edge(0, u, v).unwrap();
        }
        for (u, v) in [(1, 9), (3, 9), (0, 2)] {
            b.add_edge(1, u, v).unwrap();
        }
        b.build()
    }

    #[test]
    fn build_reindexes_and_counts_degrees() {
        let g = graph();
        let universe = VertexSet::from_iter(10, [1, 3, 5, 9]);
        let dense = DenseSubgraph::build(&g, &universe);
        assert_eq!(dense.len(), 4);
        assert_eq!(dense.num_layers(), 2);
        // New ids: 1→0, 3→1, 5→2, 9→3.
        let all = VertexSet::full(4);
        assert_eq!(dense.degree_within(0, 0, &all), 2); // 1 ~ {3,5}
        assert_eq!(dense.degree_within(0, 2, &all), 3); // 5 ~ {1,3,9}
        assert_eq!(dense.degree_within(1, 3, &all), 2); // 9 ~ {1,3} on layer 1
                                                        // Edges to vertices outside the universe are dropped (0-2 on layer 1).
        let without_9 = VertexSet::from_iter(4, [0, 1, 2]);
        assert_eq!(dense.degree_within(0, 2, &without_9), 2);
    }

    #[test]
    fn compress_expand_roundtrip() {
        let g = graph();
        let universe = VertexSet::from_iter(10, [1, 3, 5, 9]);
        let dense = DenseSubgraph::build(&g, &universe);
        let original = VertexSet::from_iter(10, [3, 9, 0]); // 0 outside universe
        let mut compressed = dense.new_set();
        dense.compress_into(&original, &mut compressed);
        assert_eq!(compressed.to_vec(), vec![1, 3]);
        let mut expanded = VertexSet::new(10);
        dense.expand_into(&compressed, &mut expanded);
        assert_eq!(expanded.to_vec(), vec![3, 9]);
    }

    #[test]
    fn words_required_budget() {
        assert_eq!(DenseSubgraph::words_required(128, 3), 3 * 128 * 2);
        assert_eq!(DenseSubgraph::words_required(0, 3), 0);
    }
}
