//! Error types shared by the `mlgraph` crate.

use std::fmt;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors raised while constructing, loading, or storing multi-layer graphs.
#[derive(Debug)]
pub enum GraphError {
    /// A vertex index was outside the universe `0..n`.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: u64,
        /// The number of vertices in the universe.
        num_vertices: usize,
    },
    /// A layer index was outside `0..l`.
    LayerOutOfRange {
        /// The offending layer index.
        layer: usize,
        /// The number of layers in the graph.
        num_layers: usize,
    },
    /// A self-loop was supplied where self-loops are not permitted.
    SelfLoop {
        /// The vertex carrying the self loop.
        vertex: u64,
    },
    /// A parse error while reading a text graph format.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A malformed binary snapshot.
    Corrupt(String),
    /// Wrapper around I/O failures.
    Io(std::io::Error),
    /// An invalid argument (empty graph, zero layers, bad fraction, ...).
    InvalidArgument(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, num_vertices } => {
                write!(f, "vertex {vertex} out of range for a graph with {num_vertices} vertices")
            }
            GraphError::LayerOutOfRange { layer, num_layers } => {
                write!(f, "layer {layer} out of range for a graph with {num_layers} layers")
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self loop on vertex {vertex} is not allowed")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Corrupt(msg) => write!(f, "corrupt graph snapshot: {msg}"),
            GraphError::Io(err) => write!(f, "i/o error: {err}"),
            GraphError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_vertex_out_of_range() {
        let e = GraphError::VertexOutOfRange { vertex: 10, num_vertices: 5 };
        assert!(e.to_string().contains("vertex 10"));
        assert!(e.to_string().contains("5 vertices"));
    }

    #[test]
    fn display_layer_out_of_range() {
        let e = GraphError::LayerOutOfRange { layer: 3, num_layers: 2 };
        assert!(e.to_string().contains("layer 3"));
    }

    #[test]
    fn display_parse_error() {
        let e = GraphError::Parse { line: 7, message: "expected 3 fields".into() };
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains("expected 3 fields"));
    }

    #[test]
    fn io_error_conversion_preserves_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_self_loop_and_invalid_argument() {
        assert!(GraphError::SelfLoop { vertex: 4 }.to_string().contains("self loop"));
        assert!(GraphError::InvalidArgument("p must be in (0,1]".into())
            .to_string()
            .contains("p must be"));
        assert!(GraphError::Corrupt("truncated".into()).to_string().contains("truncated"));
    }
}
