//! Chung–Lu style power-law layers with a shared hub structure.
//!
//! Each vertex gets an expected degree drawn from a power law; the same
//! weight vector (lightly perturbed per layer) is used on every layer so
//! that hubs recur across layers, which is what makes per-layer d-cores
//! overlap — the regime the DCCS pruning rules are designed for.

use crate::error::{GraphError, Result};
use crate::graph::MultiLayerGraph;
use crate::Vertex;
use rand::{Rng, SeedableRng};

/// Configuration for [`chung_lu_layers`].
#[derive(Clone, Debug)]
pub struct ChungLuConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of layers.
    pub num_layers: usize,
    /// Target average degree per layer.
    pub avg_degree: f64,
    /// Power-law exponent of the expected-degree distribution (> 1).
    pub exponent: f64,
    /// Per-layer multiplicative jitter applied to vertex weights, in `[0, 1)`.
    /// 0 means every layer uses identical weights.
    pub layer_jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChungLuConfig {
    fn default() -> Self {
        ChungLuConfig {
            num_vertices: 1000,
            num_layers: 8,
            avg_degree: 6.0,
            exponent: 2.5,
            layer_jitter: 0.3,
            seed: 13,
        }
    }
}

/// Generates a multi-layer graph with power-law degree layers sharing hubs.
pub fn chung_lu_layers(config: &ChungLuConfig) -> Result<MultiLayerGraph> {
    if config.num_vertices < 2 || config.num_layers == 0 {
        return Err(GraphError::InvalidArgument("need at least 2 vertices and 1 layer".into()));
    }
    if config.exponent <= 1.0 {
        return Err(GraphError::InvalidArgument("exponent must be > 1".into()));
    }
    if !(0.0..1.0).contains(&config.layer_jitter) {
        return Err(GraphError::InvalidArgument("layer_jitter must be in [0, 1)".into()));
    }
    if config.avg_degree <= 0.0 {
        return Err(GraphError::InvalidArgument("avg_degree must be positive".into()));
    }
    let n = config.num_vertices;
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);

    // Base power-law weights: w_i = (i + 1)^(-1/(exponent - 1)), scaled so the
    // expected number of edges per layer is n * avg_degree / 2.
    let gamma = 1.0 / (config.exponent - 1.0);
    let base: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-gamma)).collect();

    // Streaming per-layer build: each layer's edge list is converted to its
    // CSR immediately and the scratch buffers are reused, so peak memory is
    // one layer's working set (plus the finished CSRs) instead of every
    // layer's edge `Vec` held simultaneously. The RNG call sequence is
    // identical to the collect-then-build form, so output is unchanged.
    let target_edges = (n as f64 * config.avg_degree / 2.0).round() as usize;
    let mut layers: Vec<crate::csr::Csr> = Vec::with_capacity(config.num_layers);
    let mut cumulative: Vec<f64> = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    let mut edges: Vec<(Vertex, Vertex)> = Vec::with_capacity(target_edges);
    for _ in 0..config.num_layers {
        // Weighted endpoint sampling: cumulative weights, binary-searched.
        cumulative.clear();
        let mut total = 0.0f64;
        for w in &base {
            let jitter = 1.0 + config.layer_jitter * (rng.gen::<f64>() * 2.0 - 1.0);
            total += w * jitter.max(0.05);
            cumulative.push(total);
        }
        let pick = |rng: &mut rand::rngs::StdRng| -> Vertex {
            let x = rng.gen::<f64>() * total;
            match cumulative.binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
                Ok(i) => i as Vertex,
                Err(i) => i.min(n - 1) as Vertex,
            }
        };
        seen.clear();
        edges.clear();
        let mut attempts = 0usize;
        let max_attempts = target_edges.saturating_mul(20).max(1000);
        while edges.len() < target_edges && attempts < max_attempts {
            attempts += 1;
            let u = pick(&mut rng);
            let v = pick(&mut rng);
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if seen.insert(key) {
                edges.push(key);
            }
        }
        layers.push(crate::csr::Csr::from_edges(n, &edges));
    }

    MultiLayerGraph::from_layers(layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_power_law_like_layers() {
        let g = chung_lu_layers(&ChungLuConfig {
            num_vertices: 500,
            num_layers: 4,
            avg_degree: 6.0,
            exponent: 2.5,
            layer_jitter: 0.2,
            seed: 3,
        })
        .unwrap();
        assert_eq!(g.num_vertices(), 500);
        assert_eq!(g.num_layers(), 4);
        for layer in g.layers() {
            let avg = 2.0 * layer.num_edges() as f64 / 500.0;
            assert!(avg > 3.0 && avg < 7.5, "unexpected average degree {avg}");
            // Hubs exist: maximum degree should far exceed the average.
            assert!(layer.max_degree() as f64 > 2.0 * avg);
        }
        assert!(g.validate());
    }

    #[test]
    fn hubs_recur_across_layers() {
        let g = chung_lu_layers(&ChungLuConfig {
            num_vertices: 400,
            num_layers: 3,
            avg_degree: 8.0,
            exponent: 2.2,
            layer_jitter: 0.1,
            seed: 11,
        })
        .unwrap();
        // Vertex 0 has the largest base weight, so it should be a hub on
        // every layer (degree well above average).
        for layer in g.layers() {
            let avg = 2.0 * layer.num_edges() as f64 / 400.0;
            assert!(layer.degree(0) as f64 > avg);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ChungLuConfig { num_vertices: 200, seed: 17, ..ChungLuConfig::default() };
        assert_eq!(chung_lu_layers(&cfg).unwrap(), chung_lu_layers(&cfg).unwrap());
    }

    #[test]
    fn rejects_invalid_configs() {
        let base = ChungLuConfig::default();
        assert!(chung_lu_layers(&ChungLuConfig { num_vertices: 1, ..base.clone() }).is_err());
        assert!(chung_lu_layers(&ChungLuConfig { exponent: 1.0, ..base.clone() }).is_err());
        assert!(chung_lu_layers(&ChungLuConfig { layer_jitter: 1.0, ..base.clone() }).is_err());
        assert!(chung_lu_layers(&ChungLuConfig { avg_degree: 0.0, ..base }).is_err());
    }
}
