//! Independent Erdős–Rényi layers (G(n, m) model).

use super::sample_edges;
use crate::error::{GraphError, Result};
use crate::graph::MultiLayerGraph;
use rand::SeedableRng;

/// Configuration for [`multi_layer_er`].
#[derive(Clone, Debug)]
pub struct ErConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of layers.
    pub num_layers: usize,
    /// Number of edges on each layer.
    pub edges_per_layer: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a multi-layer graph whose layers are independent uniform random
/// graphs with exactly `edges_per_layer` edges each (capped at the complete
/// graph size).
pub fn multi_layer_er(config: &ErConfig) -> Result<MultiLayerGraph> {
    if config.num_vertices == 0 {
        return Err(GraphError::InvalidArgument("num_vertices must be positive".into()));
    }
    if config.num_layers == 0 {
        return Err(GraphError::InvalidArgument("num_layers must be positive".into()));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let per_layer: Vec<Vec<(u32, u32)>> = (0..config.num_layers)
        .map(|_| sample_edges(&mut rng, config.num_vertices, config.edges_per_layer))
        .collect();
    MultiLayerGraph::from_edge_lists(config.num_vertices, &per_layer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let g = multi_layer_er(&ErConfig {
            num_vertices: 50,
            num_layers: 4,
            edges_per_layer: 120,
            seed: 9,
        })
        .unwrap();
        assert_eq!(g.num_vertices(), 50);
        assert_eq!(g.num_layers(), 4);
        for layer in g.layers() {
            assert_eq!(layer.num_edges(), 120);
        }
        assert!(g.validate());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ErConfig { num_vertices: 30, num_layers: 3, edges_per_layer: 40, seed: 5 };
        let a = multi_layer_er(&cfg).unwrap();
        let b = multi_layer_er(&cfg).unwrap();
        assert_eq!(a, b);
        let c = multi_layer_er(&ErConfig { seed: 6, ..cfg }).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn edge_count_capped_at_complete_graph() {
        let g = multi_layer_er(&ErConfig {
            num_vertices: 5,
            num_layers: 1,
            edges_per_layer: 1000,
            seed: 1,
        })
        .unwrap();
        assert_eq!(g.layer(0).num_edges(), 10);
    }

    #[test]
    fn rejects_degenerate_config() {
        assert!(multi_layer_er(&ErConfig {
            num_vertices: 0,
            num_layers: 1,
            edges_per_layer: 1,
            seed: 0
        })
        .is_err());
        assert!(multi_layer_er(&ErConfig {
            num_vertices: 5,
            num_layers: 0,
            edges_per_layer: 1,
            seed: 0
        })
        .is_err());
    }
}
