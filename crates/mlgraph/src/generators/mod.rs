//! Seeded synthetic multi-layer graph generators.
//!
//! The experiments in the paper run on real datasets we cannot redistribute,
//! so the `datasets` crate composes these generators into synthetic
//! analogues. All generators are deterministic given their seed.
//!
//! * [`multi_layer_er`] — independent Erdős–Rényi (G(n, m)) layers.
//! * [`planted_communities`] — background noise plus planted dense modules
//!   recurring on chosen subsets of layers (the structure d-CCs detect).
//! * [`chung_lu_layers`] — power-law expected-degree layers sharing a common
//!   hub structure across layers.
//! * [`temporal_snapshots`] — layer `t+1` rewires a fraction of layer `t`,
//!   modelling the time-window snapshot graphs (German/Wiki/English/Stack).

mod chung_lu;
mod erdos_renyi;
mod planted;
mod temporal;

pub use chung_lu::{chung_lu_layers, ChungLuConfig};
pub use erdos_renyi::{multi_layer_er, ErConfig};
pub use planted::{planted_communities, PlantedCommunity, PlantedConfig, PlantedOutput};
pub use temporal::{temporal_batches, temporal_snapshots, TemporalConfig};

use crate::Vertex;
use rand::Rng;

/// Samples `m` distinct undirected edges uniformly at random over `n`
/// vertices (rejection sampling; intended for sparse graphs where
/// `m ≪ n²/2`). Used internally by several generators.
pub(crate) fn sample_edges<R: Rng>(rng: &mut R, n: usize, m: usize) -> Vec<(Vertex, Vertex)> {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    if n < 2 {
        return edges;
    }
    while edges.len() < m {
        let u = rng.gen_range(0..n as Vertex);
        let v = rng.gen_range(0..n as Vertex);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            edges.push(key);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sample_edges_distinct_and_bounded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let edges = sample_edges(&mut rng, 10, 20);
        assert_eq!(edges.len(), 20);
        let mut set = std::collections::HashSet::new();
        for &(u, v) in &edges {
            assert!(u < v);
            assert!((v as usize) < 10);
            assert!(set.insert((u, v)));
        }
    }

    #[test]
    fn sample_edges_caps_at_complete_graph() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let edges = sample_edges(&mut rng, 4, 100);
        assert_eq!(edges.len(), 6);
    }

    #[test]
    fn sample_edges_tiny_universe() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        assert!(sample_edges(&mut rng, 1, 5).is_empty());
        assert!(sample_edges(&mut rng, 0, 5).is_empty());
    }
}
