//! Planted dense-community model.
//!
//! A background multi-layer random graph is overlaid with *planted
//! communities*: vertex groups that are densely connected (with probability
//! `intra_edge_prob`) on a chosen subset of layers. These are exactly the
//! structures d-coherent cores are designed to find, and they double as
//! ground-truth "protein complexes"/"stories" for the application-level
//! experiments (Figs. 29–32).

use super::sample_edges;
use crate::error::{GraphError, Result};
use crate::graph::MultiLayerGraph;
use crate::Vertex;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of the planted-community generator.
#[derive(Clone, Debug)]
pub struct PlantedConfig {
    /// Number of vertices in the universe.
    pub num_vertices: usize,
    /// Number of layers.
    pub num_layers: usize,
    /// Number of planted communities.
    pub num_communities: usize,
    /// Inclusive range of community sizes.
    pub community_size: (usize, usize),
    /// Number of layers each community is dense on.
    pub layers_per_community: usize,
    /// Probability of each intra-community edge on the community's layers.
    pub intra_edge_prob: f64,
    /// Number of uniform background edges per layer.
    pub background_edges_per_layer: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        PlantedConfig {
            num_vertices: 500,
            num_layers: 8,
            num_communities: 12,
            community_size: (8, 20),
            layers_per_community: 4,
            intra_edge_prob: 0.85,
            background_edges_per_layer: 400,
            seed: 42,
        }
    }
}

/// One planted community: its members and the layers it is dense on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlantedCommunity {
    /// Sorted member vertices.
    pub members: Vec<Vertex>,
    /// Sorted layer indices on which the community is dense.
    pub layers: Vec<usize>,
}

/// The generated graph together with its planted ground truth.
#[derive(Clone, Debug)]
pub struct PlantedOutput {
    /// The generated multi-layer graph.
    pub graph: MultiLayerGraph,
    /// The planted communities (ground truth).
    pub communities: Vec<PlantedCommunity>,
}

/// Generates a multi-layer graph with planted dense communities.
pub fn planted_communities(config: &PlantedConfig) -> Result<PlantedOutput> {
    if config.num_vertices == 0 || config.num_layers == 0 {
        return Err(GraphError::InvalidArgument("vertices and layers must be positive".into()));
    }
    if config.community_size.0 < 2 || config.community_size.0 > config.community_size.1 {
        return Err(GraphError::InvalidArgument(
            "community_size must satisfy 2 <= min <= max".into(),
        ));
    }
    if config.community_size.1 > config.num_vertices {
        return Err(GraphError::InvalidArgument(
            "community size exceeds the vertex universe".into(),
        ));
    }
    if config.layers_per_community == 0 || config.layers_per_community > config.num_layers {
        return Err(GraphError::InvalidArgument(
            "layers_per_community must be in 1..=num_layers".into(),
        ));
    }
    if !(0.0..=1.0).contains(&config.intra_edge_prob) {
        return Err(GraphError::InvalidArgument("intra_edge_prob must be in [0, 1]".into()));
    }

    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let n = config.num_vertices;
    let l = config.num_layers;
    let mut per_layer: Vec<Vec<(Vertex, Vertex)>> =
        (0..l).map(|_| sample_edges(&mut rng, n, config.background_edges_per_layer)).collect();

    let mut communities = Vec::with_capacity(config.num_communities);
    let all_vertices: Vec<Vertex> = (0..n as Vertex).collect();
    let all_layers: Vec<usize> = (0..l).collect();
    for _ in 0..config.num_communities {
        let size = rng.gen_range(config.community_size.0..=config.community_size.1);
        let mut members: Vec<Vertex> =
            all_vertices.choose_multiple(&mut rng, size).copied().collect();
        members.sort_unstable();
        let mut layers: Vec<usize> =
            all_layers.choose_multiple(&mut rng, config.layers_per_community).copied().collect();
        layers.sort_unstable();
        for &layer in &layers {
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    if rng.gen_bool(config.intra_edge_prob) {
                        per_layer[layer].push((members[i], members[j]));
                    }
                }
            }
        }
        communities.push(PlantedCommunity { members, layers });
    }

    let graph = MultiLayerGraph::from_edge_lists(n, &per_layer)?;
    Ok(PlantedOutput { graph, communities })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> PlantedConfig {
        PlantedConfig {
            num_vertices: 200,
            num_layers: 6,
            num_communities: 5,
            community_size: (10, 15),
            layers_per_community: 3,
            intra_edge_prob: 1.0,
            background_edges_per_layer: 100,
            seed: 7,
        }
    }

    #[test]
    fn generates_graph_and_ground_truth() {
        let out = planted_communities(&config()).unwrap();
        assert_eq!(out.graph.num_vertices(), 200);
        assert_eq!(out.graph.num_layers(), 6);
        assert_eq!(out.communities.len(), 5);
        for c in &out.communities {
            assert!(c.members.len() >= 10 && c.members.len() <= 15);
            assert_eq!(c.layers.len(), 3);
            assert!(c.members.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(out.graph.validate());
    }

    #[test]
    fn planted_communities_are_cliques_at_prob_one() {
        let out = planted_communities(&config()).unwrap();
        for c in &out.communities {
            for &layer in &c.layers {
                let csr = out.graph.layer(layer);
                for (i, &u) in c.members.iter().enumerate() {
                    for &v in &c.members[i + 1..] {
                        assert!(
                            csr.has_edge(u, v),
                            "missing planted edge ({u},{v}) on layer {layer}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = planted_communities(&config()).unwrap();
        let b = planted_communities(&config()).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.communities, b.communities);
    }

    #[test]
    fn rejects_invalid_configs() {
        let mut c = config();
        c.community_size = (1, 5);
        assert!(planted_communities(&c).is_err());
        let mut c = config();
        c.community_size = (10, 500);
        assert!(planted_communities(&c).is_err());
        let mut c = config();
        c.layers_per_community = 0;
        assert!(planted_communities(&c).is_err());
        let mut c = config();
        c.intra_edge_prob = 1.5;
        assert!(planted_communities(&c).is_err());
        let mut c = config();
        c.num_vertices = 0;
        assert!(planted_communities(&c).is_err());
    }

    #[test]
    fn default_config_is_valid() {
        let out = planted_communities(&PlantedConfig::default()).unwrap();
        assert_eq!(out.communities.len(), 12);
    }
}
