//! Temporal snapshot generator.
//!
//! The four large datasets of the paper (German, Wiki, English, Stack) are
//! interaction networks whose layers are time windows: consecutive layers
//! share much of their structure. This generator models that by evolving a
//! base edge set: layer `t+1` keeps a `retain` fraction of layer `t`'s edges
//! and replaces the rest with fresh random edges, optionally biased toward a
//! persistent "core" community of vertices.

use super::sample_edges;
use crate::error::{GraphError, Result};
use crate::graph::MultiLayerGraph;
use crate::Vertex;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for [`temporal_snapshots`].
#[derive(Clone, Debug)]
pub struct TemporalConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of snapshot layers.
    pub num_layers: usize,
    /// Number of edges per snapshot.
    pub edges_per_layer: usize,
    /// Fraction of the previous snapshot's edges retained in the next one.
    pub retain: f64,
    /// Size of the persistent densely-interacting community (0 disables it).
    pub core_size: usize,
    /// Fraction of fresh edges that fall inside the persistent community.
    pub core_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TemporalConfig {
    fn default() -> Self {
        TemporalConfig {
            num_vertices: 2000,
            num_layers: 12,
            edges_per_layer: 8000,
            retain: 0.6,
            core_size: 60,
            core_bias: 0.25,
            seed: 99,
        }
    }
}

/// Generates a sequence of correlated snapshot layers.
pub fn temporal_snapshots(config: &TemporalConfig) -> Result<MultiLayerGraph> {
    if config.num_vertices < 2 || config.num_layers == 0 {
        return Err(GraphError::InvalidArgument("need at least 2 vertices and 1 layer".into()));
    }
    if !(0.0..=1.0).contains(&config.retain) {
        return Err(GraphError::InvalidArgument("retain must be in [0, 1]".into()));
    }
    if !(0.0..=1.0).contains(&config.core_bias) {
        return Err(GraphError::InvalidArgument("core_bias must be in [0, 1]".into()));
    }
    if config.core_size > config.num_vertices {
        return Err(GraphError::InvalidArgument("core_size exceeds the vertex universe".into()));
    }
    let n = config.num_vertices;
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);

    let core: Vec<Vertex> = {
        let mut all: Vec<Vertex> = (0..n as Vertex).collect();
        all.shuffle(&mut rng);
        all.truncate(config.core_size);
        all
    };

    let fresh_edge = |rng: &mut rand::rngs::StdRng| -> (Vertex, Vertex) {
        loop {
            let in_core = core.len() >= 2 && rng.gen_bool(config.core_bias);
            let (u, v) = if in_core {
                (*core.choose(rng).unwrap(), *core.choose(rng).unwrap())
            } else {
                (rng.gen_range(0..n as Vertex), rng.gen_range(0..n as Vertex))
            };
            if u != v {
                return if u < v { (u, v) } else { (v, u) };
            }
        }
    };

    let mut per_layer: Vec<Vec<(Vertex, Vertex)>> = Vec::with_capacity(config.num_layers);
    let mut current: Vec<(Vertex, Vertex)> = sample_edges(&mut rng, n, config.edges_per_layer);
    per_layer.push(current.clone());
    for _ in 1..config.num_layers {
        let mut next: Vec<(Vertex, Vertex)> = Vec::with_capacity(config.edges_per_layer);
        let mut seen = std::collections::HashSet::with_capacity(config.edges_per_layer * 2);
        for &e in &current {
            if rng.gen_bool(config.retain) && seen.insert(e) {
                next.push(e);
            }
        }
        let mut attempts = 0usize;
        let max_attempts = config.edges_per_layer.saturating_mul(30).max(1000);
        while next.len() < config.edges_per_layer && attempts < max_attempts {
            attempts += 1;
            let e = fresh_edge(&mut rng);
            if seen.insert(e) {
                next.push(e);
            }
        }
        per_layer.push(next.clone());
        current = next;
    }

    let mut graph = MultiLayerGraph::from_edge_lists(n, &per_layer)?;
    // Name layers like time windows for nicer reporting.
    let names: Vec<String> = (0..config.num_layers).map(|t| format!("t{t}")).collect();
    let layers = graph.layers().to_vec();
    graph = MultiLayerGraph::from_parts(layers, None, names);
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TemporalConfig {
        TemporalConfig {
            num_vertices: 300,
            num_layers: 5,
            edges_per_layer: 900,
            retain: 0.7,
            core_size: 30,
            core_bias: 0.3,
            seed: 21,
        }
    }

    #[test]
    fn generates_requested_shape() {
        let g = temporal_snapshots(&config()).unwrap();
        assert_eq!(g.num_vertices(), 300);
        assert_eq!(g.num_layers(), 5);
        for layer in g.layers() {
            assert!(layer.num_edges() > 800, "snapshot too sparse: {}", layer.num_edges());
        }
        assert_eq!(g.layer_name(0), "t0");
        assert!(g.validate());
    }

    #[test]
    fn consecutive_layers_overlap_more_than_distant_ones() {
        let g = temporal_snapshots(&config()).unwrap();
        let overlap = |a: usize, b: usize| -> usize {
            let ea: std::collections::HashSet<_> = g.layer(a).edges().collect();
            g.layer(b).edges().filter(|e| ea.contains(e)).count()
        };
        let near = overlap(0, 1);
        let far = overlap(0, 4);
        assert!(near > far, "expected temporal correlation: near={near} far={far}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(temporal_snapshots(&config()).unwrap(), temporal_snapshots(&config()).unwrap());
    }

    #[test]
    fn rejects_invalid_configs() {
        let base = config();
        assert!(temporal_snapshots(&TemporalConfig { retain: 1.5, ..base.clone() }).is_err());
        assert!(temporal_snapshots(&TemporalConfig { core_bias: -0.1, ..base.clone() }).is_err());
        assert!(temporal_snapshots(&TemporalConfig { core_size: 10_000, ..base.clone() }).is_err());
        assert!(temporal_snapshots(&TemporalConfig { num_vertices: 1, ..base }).is_err());
    }
}
