//! Temporal snapshot generator.
//!
//! The four large datasets of the paper (German, Wiki, English, Stack) are
//! interaction networks whose layers are time windows: consecutive layers
//! share much of their structure. This generator models that by evolving a
//! base edge set: layer `t+1` keeps a `retain` fraction of layer `t`'s edges
//! and replaces the rest with fresh random edges, optionally biased toward a
//! persistent "core" community of vertices.

use super::sample_edges;
use crate::batch::EdgeBatch;
use crate::error::{GraphError, Result};
use crate::graph::MultiLayerGraph;
use crate::Vertex;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for [`temporal_snapshots`].
#[derive(Clone, Debug)]
pub struct TemporalConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of snapshot layers.
    pub num_layers: usize,
    /// Number of edges per snapshot.
    pub edges_per_layer: usize,
    /// Fraction of the previous snapshot's edges retained in the next one.
    pub retain: f64,
    /// Size of the persistent densely-interacting community (0 disables it).
    pub core_size: usize,
    /// Fraction of fresh edges that fall inside the persistent community.
    pub core_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TemporalConfig {
    fn default() -> Self {
        TemporalConfig {
            num_vertices: 2000,
            num_layers: 12,
            edges_per_layer: 8000,
            retain: 0.6,
            core_size: 60,
            core_bias: 0.25,
            seed: 99,
        }
    }
}

/// Generates a sequence of correlated snapshot layers.
pub fn temporal_snapshots(config: &TemporalConfig) -> Result<MultiLayerGraph> {
    if config.num_vertices < 2 || config.num_layers == 0 {
        return Err(GraphError::InvalidArgument("need at least 2 vertices and 1 layer".into()));
    }
    if !(0.0..=1.0).contains(&config.retain) {
        return Err(GraphError::InvalidArgument("retain must be in [0, 1]".into()));
    }
    if !(0.0..=1.0).contains(&config.core_bias) {
        return Err(GraphError::InvalidArgument("core_bias must be in [0, 1]".into()));
    }
    if config.core_size > config.num_vertices {
        return Err(GraphError::InvalidArgument("core_size exceeds the vertex universe".into()));
    }
    let n = config.num_vertices;
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);

    let core: Vec<Vertex> = {
        let mut all: Vec<Vertex> = (0..n as Vertex).collect();
        all.shuffle(&mut rng);
        all.truncate(config.core_size);
        all
    };

    let fresh_edge = |rng: &mut rand::rngs::StdRng| -> (Vertex, Vertex) {
        loop {
            let in_core = core.len() >= 2 && rng.gen_bool(config.core_bias);
            let (u, v) = if in_core {
                (*core.choose(rng).unwrap(), *core.choose(rng).unwrap())
            } else {
                (rng.gen_range(0..n as Vertex), rng.gen_range(0..n as Vertex))
            };
            if u != v {
                return if u < v { (u, v) } else { (v, u) };
            }
        }
    };

    let mut per_layer: Vec<Vec<(Vertex, Vertex)>> = Vec::with_capacity(config.num_layers);
    let mut current: Vec<(Vertex, Vertex)> = sample_edges(&mut rng, n, config.edges_per_layer);
    per_layer.push(current.clone());
    for _ in 1..config.num_layers {
        let mut next: Vec<(Vertex, Vertex)> = Vec::with_capacity(config.edges_per_layer);
        let mut seen = std::collections::HashSet::with_capacity(config.edges_per_layer * 2);
        for &e in &current {
            if rng.gen_bool(config.retain) && seen.insert(e) {
                next.push(e);
            }
        }
        let mut attempts = 0usize;
        let max_attempts = config.edges_per_layer.saturating_mul(30).max(1000);
        while next.len() < config.edges_per_layer && attempts < max_attempts {
            attempts += 1;
            let e = fresh_edge(&mut rng);
            if seen.insert(e) {
                next.push(e);
            }
        }
        per_layer.push(next.clone());
        current = next;
    }

    let mut graph = MultiLayerGraph::from_edge_lists(n, &per_layer)?;
    // Name layers like time windows for nicer reporting.
    let names: Vec<String> = (0..config.num_layers).map(|t| format!("t{t}")).collect();
    let layers = graph.layers().to_vec();
    graph = MultiLayerGraph::from_parts(layers, None, names);
    Ok(graph)
}

/// Generates an evolving stream: the initial snapshot graph from
/// [`temporal_snapshots`] plus `num_batches` mutation batches of
/// `batch_size` operations each, modelling continued evolution of the time
/// windows. Each operation picks a layer uniformly and either deletes one
/// of its current edges (~40% of the time, when possible) or inserts a
/// fresh edge biased toward the persistent core community — the same churn
/// model the snapshot generator uses between consecutive windows.
///
/// Every emitted operation is effective against the graph state at its
/// batch's commit point, and no edge is touched twice within one batch, so
/// the batches replay cleanly through
/// [`MultiLayerGraph::apply_batch`](crate::MultiLayerGraph::apply_batch)
/// in order. Deterministic per seed.
pub fn temporal_batches(
    config: &TemporalConfig,
    num_batches: usize,
    batch_size: usize,
) -> Result<(MultiLayerGraph, Vec<EdgeBatch>)> {
    if batch_size == 0 {
        return Err(GraphError::InvalidArgument("batch_size must be positive".into()));
    }
    let graph = temporal_snapshots(config)?;
    let n = config.num_vertices;
    // Separate stream so the initial snapshots stay identical to
    // `temporal_snapshots` for the same config.
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15);

    let core: Vec<Vertex> = {
        let mut all: Vec<Vertex> = (0..n as Vertex).collect();
        all.shuffle(&mut rng);
        all.truncate(config.core_size);
        all
    };
    let fresh_edge = |rng: &mut rand::rngs::StdRng| -> (Vertex, Vertex) {
        loop {
            let in_core = core.len() >= 2 && rng.gen_bool(config.core_bias);
            let (u, v) = if in_core {
                (*core.choose(rng).unwrap(), *core.choose(rng).unwrap())
            } else {
                (rng.gen_range(0..n as Vertex), rng.gen_range(0..n as Vertex))
            };
            if u != v {
                return if u < v { (u, v) } else { (v, u) };
            }
        }
    };

    // Mirror of the evolving per-layer edge sets: a hash set for membership
    // and a vector for uniform deletion sampling.
    let mut sets: Vec<std::collections::HashSet<(Vertex, Vertex)>> =
        graph.layers().iter().map(|l| l.edges().collect()).collect();
    let mut pools: Vec<Vec<(Vertex, Vertex)>> =
        graph.layers().iter().map(|l| l.edges().collect()).collect();

    let mut batches = Vec::with_capacity(num_batches);
    for _ in 0..num_batches {
        let mut batch = EdgeBatch::new();
        let mut touched: std::collections::HashSet<(usize, Vertex, Vertex)> =
            std::collections::HashSet::with_capacity(batch_size * 2);
        let mut attempts = 0usize;
        let max_attempts = batch_size.saturating_mul(50).max(1000);
        while batch.len() < batch_size && attempts < max_attempts {
            attempts += 1;
            let layer = rng.gen_range(0..graph.num_layers());
            let delete = !pools[layer].is_empty() && rng.gen_bool(0.4);
            if delete {
                let idx = rng.gen_range(0..pools[layer].len());
                let e = pools[layer][idx];
                if !touched.insert((layer, e.0, e.1)) {
                    continue;
                }
                pools[layer].swap_remove(idx);
                sets[layer].remove(&e);
                batch.delete(layer, e.0, e.1);
            } else {
                let e = fresh_edge(&mut rng);
                if sets[layer].contains(&e) || !touched.insert((layer, e.0, e.1)) {
                    continue;
                }
                sets[layer].insert(e);
                pools[layer].push(e);
                batch.insert(layer, e.0, e.1);
            }
        }
        batches.push(batch);
    }
    Ok((graph, batches))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TemporalConfig {
        TemporalConfig {
            num_vertices: 300,
            num_layers: 5,
            edges_per_layer: 900,
            retain: 0.7,
            core_size: 30,
            core_bias: 0.3,
            seed: 21,
        }
    }

    #[test]
    fn generates_requested_shape() {
        let g = temporal_snapshots(&config()).unwrap();
        assert_eq!(g.num_vertices(), 300);
        assert_eq!(g.num_layers(), 5);
        for layer in g.layers() {
            assert!(layer.num_edges() > 800, "snapshot too sparse: {}", layer.num_edges());
        }
        assert_eq!(g.layer_name(0), "t0");
        assert!(g.validate());
    }

    #[test]
    fn consecutive_layers_overlap_more_than_distant_ones() {
        let g = temporal_snapshots(&config()).unwrap();
        let overlap = |a: usize, b: usize| -> usize {
            let ea: std::collections::HashSet<_> = g.layer(a).edges().collect();
            g.layer(b).edges().filter(|e| ea.contains(e)).count()
        };
        let near = overlap(0, 1);
        let far = overlap(0, 4);
        assert!(near > far, "expected temporal correlation: near={near} far={far}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(temporal_snapshots(&config()).unwrap(), temporal_snapshots(&config()).unwrap());
    }

    #[test]
    fn batch_stream_replays_cleanly() {
        let (graph, batches) = temporal_batches(&config(), 6, 25).unwrap();
        assert_eq!(graph, temporal_snapshots(&config()).unwrap());
        assert_eq!(batches.len(), 6);
        let mut current = graph;
        for batch in &batches {
            assert_eq!(batch.len(), 25);
            let (next, applied) = current.apply_batch(batch).unwrap();
            // Every emitted operation is effective at its commit point.
            assert_eq!(applied.num_inserted() + applied.num_deleted(), batch.len());
            assert!(next.validate());
            current = next;
        }
    }

    #[test]
    fn batch_stream_deterministic_per_seed() {
        let a = temporal_batches(&config(), 3, 10).unwrap();
        let b = temporal_batches(&config(), 3, 10).unwrap();
        assert_eq!(a, b);
        assert!(temporal_batches(&config(), 3, 0).is_err());
    }

    #[test]
    fn rejects_invalid_configs() {
        let base = config();
        assert!(temporal_snapshots(&TemporalConfig { retain: 1.5, ..base.clone() }).is_err());
        assert!(temporal_snapshots(&TemporalConfig { core_bias: -0.1, ..base.clone() }).is_err());
        assert!(temporal_snapshots(&TemporalConfig { core_size: 10_000, ..base.clone() }).is_err());
        assert!(temporal_snapshots(&TemporalConfig { num_vertices: 1, ..base }).is_err());
    }
}
