//! [`MultiLayerGraph`]: an immutable set of CSR layers over one vertex set.

use crate::bitset::VertexSet;
use crate::csr::Csr;
use crate::error::{GraphError, Result};
use crate::{Layer, Vertex};
use serde::{Deserialize, Serialize};

/// A multi-layer graph `G = (V, E_1, …, E_l)`.
///
/// Every layer shares the same vertex universe `0..n`; vertices missing from
/// a layer simply have degree zero there, matching the paper's convention of
/// padding layers with isolated vertices.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiLayerGraph {
    layers: Vec<Csr>,
    vertex_labels: Option<Vec<String>>,
    layer_names: Vec<String>,
}

impl MultiLayerGraph {
    /// Assembles a graph from already-built layers. All layers must agree on
    /// the vertex count; this is an internal constructor used by the builder
    /// and the loaders.
    pub(crate) fn from_parts(
        layers: Vec<Csr>,
        vertex_labels: Option<Vec<String>>,
        layer_names: Vec<String>,
    ) -> Self {
        assert!(!layers.is_empty(), "a multi-layer graph needs at least one layer");
        let n = layers[0].num_vertices();
        assert!(
            layers.iter().all(|l| l.num_vertices() == n),
            "all layers must share the same vertex universe"
        );
        if let Some(labels) = &vertex_labels {
            assert_eq!(labels.len(), n, "one label per vertex required");
        }
        assert_eq!(layer_names.len(), layers.len(), "one name per layer required");
        MultiLayerGraph { layers, vertex_labels, layer_names }
    }

    /// Assembles a graph from already-built CSR layers sharing one vertex
    /// universe, with default layer names. This is the streaming-build
    /// entry point: callers can construct each layer's [`Csr`] in turn and
    /// drop the intermediate edge list before generating the next layer,
    /// capping peak memory at one layer's working set.
    pub fn from_layers(layers: Vec<Csr>) -> Result<Self> {
        if layers.is_empty() {
            return Err(GraphError::InvalidArgument("at least one layer is required".into()));
        }
        let n = layers[0].num_vertices();
        if let Some(bad) = layers.iter().find(|l| l.num_vertices() != n) {
            return Err(GraphError::InvalidArgument(format!(
                "all layers must share the same vertex universe (got {} and {})",
                n,
                bad.num_vertices()
            )));
        }
        let names = (0..layers.len()).map(|i| format!("layer{i}")).collect();
        Ok(MultiLayerGraph::from_parts(layers, None, names))
    }

    /// Builds a graph directly from per-layer edge lists over `n` vertices.
    pub fn from_edge_lists(n: usize, per_layer: &[Vec<(Vertex, Vertex)>]) -> Result<Self> {
        if per_layer.is_empty() {
            return Err(GraphError::InvalidArgument("at least one layer is required".into()));
        }
        for edges in per_layer {
            for &(u, v) in edges {
                if u as usize >= n || v as usize >= n {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: u.max(v) as u64,
                        num_vertices: n,
                    });
                }
            }
        }
        let layers: Vec<Csr> = per_layer.iter().map(|e| Csr::from_edges(n, e)).collect();
        let names = (0..layers.len()).map(|i| format!("layer{i}")).collect();
        Ok(MultiLayerGraph::from_parts(layers, None, names))
    }

    /// Number of vertices in the shared universe (`|V(G)|`).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.layers[0].num_vertices()
    }

    /// Number of layers (`l(G)`).
    #[inline]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The CSR for layer `i`. Panics if `i` is out of range.
    #[inline]
    pub fn layer(&self, i: Layer) -> &Csr {
        &self.layers[i]
    }

    /// All layers, in order.
    #[inline]
    pub fn layers(&self) -> &[Csr] {
        &self.layers
    }

    /// Total number of edges summed over layers (`Σ_i |E_i|`).
    pub fn total_edges(&self) -> usize {
        self.layers.iter().map(|l| l.num_edges()).sum()
    }

    /// Number of distinct edges in the union graph (`|∪_i E_i|`).
    pub fn union_edge_count(&self) -> usize {
        self.union_graph().num_edges()
    }

    /// Builds the union graph: one layer containing every edge that exists on
    /// any layer.
    pub fn union_graph(&self) -> Csr {
        let mut edges: Vec<(Vertex, Vertex)> = Vec::new();
        for layer in &self.layers {
            edges.extend(layer.edges());
        }
        Csr::from_edges(self.num_vertices(), &edges)
    }

    /// The label of vertex `v`, if the graph carries labels.
    pub fn vertex_label(&self, v: Vertex) -> Option<&str> {
        self.vertex_labels.as_ref().and_then(|l| l.get(v as usize)).map(|s| s.as_str())
    }

    /// All vertex labels, if present.
    pub fn vertex_labels(&self) -> Option<&[String]> {
        self.vertex_labels.as_deref()
    }

    /// The human-readable name of layer `i`.
    pub fn layer_name(&self, i: Layer) -> &str {
        &self.layer_names[i]
    }

    /// All layer names, in order.
    pub fn layer_names(&self) -> &[String] {
        &self.layer_names
    }

    /// Degree of `v` on layer `i`.
    #[inline]
    pub fn degree(&self, i: Layer, v: Vertex) -> usize {
        self.layers[i].degree(v)
    }

    /// Minimum degree of `v` over the given layers (`min_{i∈L} d_{G_i}(v)`).
    pub fn min_degree_over(&self, v: Vertex, layer_set: &[Layer]) -> usize {
        layer_set.iter().map(|&i| self.layers[i].degree(v)).min().unwrap_or(0)
    }

    /// Builds the multi-layer subgraph induced by `within`, re-indexed to
    /// `0..within.len()`. Returns the subgraph and the new-to-old vertex map.
    pub fn induced_subgraph(&self, within: &VertexSet) -> (MultiLayerGraph, Vec<Vertex>) {
        let mapping: Vec<Vertex> = within.to_vec();
        let mut inverse = vec![u32::MAX; self.num_vertices()];
        for (new, &old) in mapping.iter().enumerate() {
            inverse[old as usize] = new as u32;
        }
        let layers: Vec<Csr> = self
            .layers
            .iter()
            .map(|layer| {
                let mut edges = Vec::new();
                for &old_u in &mapping {
                    for &old_v in layer.neighbors(old_u) {
                        if old_v > old_u && within.contains(old_v) {
                            edges.push((inverse[old_u as usize], inverse[old_v as usize]));
                        }
                    }
                }
                Csr::from_edges(mapping.len(), &edges)
            })
            .collect();
        let labels = self
            .vertex_labels
            .as_ref()
            .map(|all| mapping.iter().map(|&old| all[old as usize].clone()).collect::<Vec<_>>());
        let sub = MultiLayerGraph::from_parts(layers, labels, self.layer_names.clone());
        (sub, mapping)
    }

    /// Restricts the graph to a subset of layers (by index), preserving the
    /// vertex universe. Layer order follows `layer_set`.
    pub fn select_layers(&self, layer_set: &[Layer]) -> Result<MultiLayerGraph> {
        if layer_set.is_empty() {
            return Err(GraphError::InvalidArgument("layer selection must be non-empty".into()));
        }
        let mut layers = Vec::with_capacity(layer_set.len());
        let mut names = Vec::with_capacity(layer_set.len());
        for &i in layer_set {
            if i >= self.num_layers() {
                return Err(GraphError::LayerOutOfRange {
                    layer: i,
                    num_layers: self.num_layers(),
                });
            }
            layers.push(self.layers[i].clone());
            names.push(self.layer_names[i].clone());
        }
        Ok(MultiLayerGraph::from_parts(layers, self.vertex_labels.clone(), names))
    }

    /// Checks structural invariants of every layer.
    pub fn validate(&self) -> bool {
        self.layers.iter().all(|l| l.validate())
    }

    /// A full vertex set over this graph's universe.
    pub fn full_vertex_set(&self) -> VertexSet {
        VertexSet::full(self.num_vertices())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MultiLayerGraphBuilder;

    /// The 4-layer example of Fig. 1 (15 vertices a..n,x,y) is approximated
    /// here with a small 3-layer graph used across the crate's tests.
    fn small_graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(6, 3);
        // layer 0: a 4-clique on {0,1,2,3}
        for (u, v) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(0, u, v).unwrap();
        }
        // layer 1: a path 0-1-2-3-4
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            b.add_edge(1, u, v).unwrap();
        }
        // layer 2: triangle {1,2,4} plus edge 4-5
        for (u, v) in [(1, 2), (2, 4), (1, 4), (4, 5)] {
            b.add_edge(2, u, v).unwrap();
        }
        b.build()
    }

    #[test]
    fn shape_and_counts() {
        let g = small_graph();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_layers(), 3);
        assert_eq!(g.total_edges(), 6 + 4 + 4);
        assert!(g.validate());
    }

    #[test]
    fn union_graph_dedups_edges() {
        let g = small_graph();
        let u = g.union_graph();
        // edge (1,2) appears on layers 0, 1, 2 but only once in the union.
        assert!(u.has_edge(1, 2));
        assert_eq!(u.num_edges(), g.union_edge_count());
        assert!(u.num_edges() < g.total_edges());
    }

    #[test]
    fn min_degree_over_layers() {
        let g = small_graph();
        assert_eq!(g.min_degree_over(2, &[0]), 3);
        assert_eq!(g.min_degree_over(2, &[0, 1]), 2);
        assert_eq!(g.min_degree_over(2, &[0, 1, 2]), 2);
        assert_eq!(g.min_degree_over(5, &[0, 1, 2]), 0);
        assert_eq!(g.min_degree_over(0, &[]), 0);
    }

    #[test]
    fn induced_subgraph_restricts_all_layers() {
        let g = small_graph();
        let s = VertexSet::from_iter(6, [1, 2, 3, 4]);
        let (sub, mapping) = g.induced_subgraph(&s);
        assert_eq!(mapping, vec![1, 2, 3, 4]);
        assert_eq!(sub.num_vertices(), 4);
        assert_eq!(sub.num_layers(), 3);
        // layer 0 edges among {1,2,3}: (1,2),(1,3),(2,3) -> 3 edges
        assert_eq!(sub.layer(0).num_edges(), 3);
        // layer 1 path restricted: (1,2),(2,3),(3,4) -> 3 edges
        assert_eq!(sub.layer(1).num_edges(), 3);
        // layer 2 triangle {1,2,4} -> 3 edges
        assert_eq!(sub.layer(2).num_edges(), 3);
        assert!(sub.validate());
    }

    #[test]
    fn select_layers_reorders_and_validates() {
        let g = small_graph();
        let sel = g.select_layers(&[2, 0]).unwrap();
        assert_eq!(sel.num_layers(), 2);
        assert_eq!(sel.layer(0).num_edges(), 4);
        assert_eq!(sel.layer(1).num_edges(), 6);
        assert_eq!(sel.layer_name(0), "layer2");
        assert!(g.select_layers(&[]).is_err());
        assert!(g.select_layers(&[9]).is_err());
    }

    #[test]
    fn from_edge_lists_checks_ranges() {
        let ok = MultiLayerGraph::from_edge_lists(3, &[vec![(0, 1)], vec![(1, 2)]]).unwrap();
        assert_eq!(ok.num_layers(), 2);
        let err = MultiLayerGraph::from_edge_lists(3, &[vec![(0, 5)]]);
        assert!(err.is_err());
        let err2 = MultiLayerGraph::from_edge_lists(3, &[]);
        assert!(err2.is_err());
    }

    #[test]
    fn from_layers_matches_edge_list_build_and_checks_universes() {
        let per_layer = vec![vec![(0u32, 1u32)], vec![(1u32, 2u32)]];
        let via_lists = MultiLayerGraph::from_edge_lists(3, &per_layer).unwrap();
        let layers: Vec<Csr> = per_layer.iter().map(|e| Csr::from_edges(3, e)).collect();
        let via_layers = MultiLayerGraph::from_layers(layers).unwrap();
        assert_eq!(via_lists, via_layers);
        assert!(MultiLayerGraph::from_layers(vec![]).is_err());
        let mismatched = vec![Csr::from_edges(3, &[(0, 1)]), Csr::from_edges(4, &[(0, 1)])];
        assert!(MultiLayerGraph::from_layers(mismatched).is_err());
    }

    #[test]
    fn full_vertex_set_covers_universe() {
        let g = small_graph();
        let all = g.full_vertex_set();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn labels_propagate_through_induced_subgraph() {
        let mut b = MultiLayerGraphBuilder::with_labels(1);
        b.add_labeled_edge(0, "a", "b").unwrap();
        b.add_labeled_edge(0, "b", "c").unwrap();
        let g = b.build();
        let s = VertexSet::from_iter(3, [1, 2]);
        let (sub, _) = g.induced_subgraph(&s);
        assert_eq!(sub.vertex_label(0), Some("b"));
        assert_eq!(sub.vertex_label(1), Some("c"));
    }
}
