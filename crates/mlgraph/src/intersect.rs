//! Sorted-run intersection primitives: linear merge and galloping
//! (exponential) search, with an adaptive entry point that picks between
//! them by length ratio.
//!
//! CSR adjacencies and the compressed bitset's sparse containers are both
//! stored as ascending runs, so "how many neighbors survive in this set"
//! questions reduce to run∩run intersections. A linear merge is optimal
//! when the runs have similar lengths; when one run is much shorter,
//! galloping skips through the long run in `O(short · log(long/short))`
//! instead of scanning it.

/// When `long / short` reaches this ratio, galloping beats the merge.
const GALLOP_RATIO: usize = 8;

/// Size of the intersection of two ascending runs (linear merge).
pub fn merge_count<T: Ord + Copy>(a: &[T], b: &[T]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// First index in the ascending run `run[from..]` whose element is `>=
/// target`, found by doubling steps then a binary search of the bracketed
/// window (galloping / exponential search).
#[inline]
fn gallop_to<T: Ord + Copy>(run: &[T], mut from: usize, target: T) -> usize {
    let mut step = 1usize;
    let mut bound = from;
    while bound < run.len() && run[bound] < target {
        from = bound + 1;
        bound += step;
        step <<= 1;
    }
    let hi = bound.min(run.len());
    from + run[from..hi].partition_point(|&x| x < target)
}

/// Size of the intersection of two ascending runs where `short` is much
/// shorter than `long`: for each element of `short`, gallop through `long`.
pub fn galloping_count<T: Ord + Copy>(short: &[T], long: &[T]) -> usize {
    let mut pos = 0usize;
    let mut count = 0usize;
    for &x in short {
        pos = gallop_to(long, pos, x);
        if pos == long.len() {
            break;
        }
        if long[pos] == x {
            count += 1;
            pos += 1;
        }
    }
    count
}

/// Size of the intersection of two ascending runs, choosing merge or
/// galloping by length ratio. Both inputs must be sorted ascending
/// (duplicates pair up positionally, so deduped inputs give set semantics).
pub fn sorted_intersect_count<T: Ord + Copy>(a: &[T], b: &[T]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0;
    }
    if long.len() / short.len() >= GALLOP_RATIO {
        galloping_count(short, long)
    } else {
        merge_count(short, long)
    }
}

/// Writes the intersection of two ascending runs into `out` (cleared
/// first), choosing merge or galloping by length ratio; returns its length.
pub fn sorted_intersect_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut Vec<T>) -> usize {
    out.clear();
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0;
    }
    if long.len() / short.len() >= GALLOP_RATIO {
        let mut pos = 0usize;
        for &x in short {
            pos = gallop_to(long, pos, x);
            if pos == long.len() {
                break;
            }
            if long[pos] == x {
                out.push(x);
                pos += 1;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < short.len() && j < long.len() {
            match short[i].cmp(&long[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(short[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    out.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().copied().filter(|x| b.binary_search(x).is_ok()).collect()
    }

    /// Deterministic pseudo-random ascending run.
    fn run(seed: u64, len: usize, universe: u32) -> Vec<u32> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut v: Vec<u32> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u32 % universe.max(1)
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn merge_and_gallop_agree_with_naive() {
        for (la, lb, universe) in
            [(0, 5, 100), (5, 0, 100), (10, 10, 40), (4, 900, 4000), (900, 4, 4000), (64, 64, 80)]
        {
            let a = run(la as u64 + 1, la, universe);
            let b = run(lb as u64 + 77, lb, universe);
            let expected = naive(&a, &b).len();
            assert_eq!(merge_count(&a, &b), expected, "merge {la}x{lb}");
            assert_eq!(galloping_count(&a, &b), expected, "gallop {la}x{lb}");
            assert_eq!(sorted_intersect_count(&a, &b), expected, "adaptive {la}x{lb}");
            assert_eq!(sorted_intersect_count(&b, &a), expected, "adaptive swapped {la}x{lb}");
            let mut out = Vec::new();
            assert_eq!(sorted_intersect_into(&a, &b, &mut out), expected);
            assert_eq!(out, naive(&a, &b));
        }
    }

    #[test]
    fn gallop_to_finds_the_lower_bound() {
        let run = [2u32, 4, 8, 16, 32, 64];
        assert_eq!(gallop_to(&run, 0, 0), 0);
        assert_eq!(gallop_to(&run, 0, 4), 1);
        assert_eq!(gallop_to(&run, 0, 5), 2);
        assert_eq!(gallop_to(&run, 2, 64), 5);
        assert_eq!(gallop_to(&run, 0, 100), 6);
        assert_eq!(gallop_to(&run, 6, 100), 6);
    }
}
