//! Compact binary snapshot format for multi-layer graphs.
//!
//! Every snapshot is wrapped in a versioned, checksummed frame so that a
//! truncated or corrupted file fails with a typed [`GraphError::Corrupt`]
//! instead of panicking (or silently decoding garbage) mid-deserialize:
//!
//! ```text
//! magic       : 8 bytes  b"MLGRAPH2"
//! version     : u32      format version (currently 1)
//! payload len : u64      exact byte length of the payload
//! checksum    : u64      FNV-1a 64-bit hash of the payload
//! payload     : ...      format-specific body
//! ```
//!
//! The graph payload itself (little-endian):
//!
//! ```text
//! n          : u64      number of vertices
//! l          : u64      number of layers
//! per layer  : u64 edge count, then edge pairs as (u32, u32)
//! labels flag: u8       1 if vertex labels follow
//! labels     : for each vertex: u32 length + utf-8 bytes
//! layer names: for each layer: u32 length + utf-8 bytes
//! ```
//!
//! The framing helpers ([`frame`], [`unframe`], [`checksum64`]) are public
//! so other on-disk artifacts (notably the d-CC hierarchy index in the
//! `dccs` crate) get the same header + checksum treatment without
//! reimplementing it.

use crate::builder::MultiLayerGraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::MultiLayerGraph;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use std::path::Path;

/// Magic prefix of framed graph snapshots.
pub const GRAPH_MAGIC: &[u8; 8] = b"MLGRAPH2";
/// Current graph snapshot format version.
pub const GRAPH_VERSION: u32 = 1;
/// Magic prefix of the legacy (unframed, unchecksummed) snapshot format.
const LEGACY_MAGIC: &[u8; 8] = b"MLGRAPH1";
/// Byte length of the frame header: magic + version + payload len + checksum.
const FRAME_HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// FNV-1a 64-bit hash of `data`.
///
/// Used as the frame checksum; dependency-free and deterministic across
/// platforms (the hash is defined on bytes, not on native word order).
pub fn checksum64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Wraps `payload` in a versioned frame: magic, version, payload length,
/// FNV-1a checksum, then the payload bytes.
pub fn frame(magic: &[u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates the frame around `data` and returns the payload slice.
///
/// Fails with [`GraphError::Corrupt`] on a short header, wrong magic,
/// unsupported version, payload-length mismatch (truncation or trailing
/// bytes), or checksum mismatch — never panics on malformed input.
pub fn unframe<'a>(magic: &[u8; 8], version: u32, data: &'a [u8]) -> Result<&'a [u8]> {
    if data.len() < FRAME_HEADER_LEN {
        return Err(GraphError::Corrupt(format!(
            "truncated header: need {FRAME_HEADER_LEN} bytes, have {}",
            data.len()
        )));
    }
    let found_magic = &data[..8];
    if found_magic != magic {
        if found_magic == LEGACY_MAGIC && magic == GRAPH_MAGIC {
            return Err(GraphError::Corrupt(
                "legacy MLGRAPH1 snapshot; regenerate it with this version".into(),
            ));
        }
        return Err(GraphError::Corrupt(format!(
            "bad magic {:?}: expected {:?}",
            String::from_utf8_lossy(found_magic),
            String::from_utf8_lossy(magic)
        )));
    }
    let found_version = u32::from_le_bytes(data[8..12].try_into().unwrap());
    if found_version != version {
        return Err(GraphError::Corrupt(format!(
            "unsupported format version {found_version} (expected {version})"
        )));
    }
    let declared_len = u64::from_le_bytes(data[12..20].try_into().unwrap());
    let payload = &data[FRAME_HEADER_LEN..];
    if declared_len != payload.len() as u64 {
        return Err(GraphError::Corrupt(format!(
            "payload length mismatch: header declares {declared_len} bytes, {} present",
            payload.len()
        )));
    }
    let declared_sum = u64::from_le_bytes(data[20..28].try_into().unwrap());
    let computed_sum = checksum64(payload);
    if declared_sum != computed_sum {
        return Err(GraphError::Corrupt(format!(
            "checksum mismatch: stored {declared_sum:#018x}, computed {computed_sum:#018x}"
        )));
    }
    Ok(payload)
}

/// Serializes `g` into a framed byte buffer.
pub fn to_bytes(g: &MultiLayerGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + g.total_edges() * 8);
    buf.put_u64_le(g.num_vertices() as u64);
    buf.put_u64_le(g.num_layers() as u64);
    for layer in g.layers() {
        buf.put_u64_le(layer.num_edges() as u64);
        for (u, v) in layer.edges() {
            buf.put_u32_le(u);
            buf.put_u32_le(v);
        }
    }
    match g.vertex_labels() {
        Some(labels) => {
            buf.put_u8(1);
            for label in labels {
                buf.put_u32_le(label.len() as u32);
                buf.put_slice(label.as_bytes());
            }
        }
        None => buf.put_u8(0),
    }
    for i in 0..g.num_layers() {
        let name = g.layer_name(i);
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
    }
    Bytes::from(frame(GRAPH_MAGIC, GRAPH_VERSION, &buf.freeze()))
}

fn ensure(buf: &Bytes, needed: usize) -> Result<()> {
    if buf.remaining() < needed {
        Err(GraphError::Corrupt(format!(
            "unexpected end of snapshot: need {needed} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

fn read_string(buf: &mut Bytes) -> Result<String> {
    ensure(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    ensure(buf, len)?;
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec())
        .map_err(|_| GraphError::Corrupt("string field is not valid utf-8".into()))
}

/// Deserializes a graph from a framed byte buffer produced by [`to_bytes`].
pub fn from_bytes(buf: Bytes) -> Result<MultiLayerGraph> {
    unframe(GRAPH_MAGIC, GRAPH_VERSION, &buf)?;
    let mut buf = buf.slice(FRAME_HEADER_LEN..buf.len());
    ensure(&buf, 16)?;
    let n = buf.get_u64_le() as usize;
    let l = buf.get_u64_le() as usize;
    if l == 0 {
        return Err(GraphError::Corrupt("snapshot declares zero layers".into()));
    }
    let mut builder = MultiLayerGraphBuilder::new(n, l);
    for layer in 0..l {
        ensure(&buf, 8)?;
        let m = buf.get_u64_le() as usize;
        ensure(&buf, m * 8)?;
        for _ in 0..m {
            let u = buf.get_u32_le();
            let v = buf.get_u32_le();
            builder
                .add_edge(layer, u, v)
                .map_err(|e| GraphError::Corrupt(format!("invalid edge in snapshot: {e}")))?;
        }
    }
    ensure(&buf, 1)?;
    let has_labels = buf.get_u8() == 1;
    let labels = if has_labels {
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            labels.push(read_string(&mut buf)?);
        }
        Some(labels)
    } else {
        None
    };
    let mut names = Vec::with_capacity(l);
    for _ in 0..l {
        names.push(read_string(&mut buf)?);
    }
    if !buf.is_empty() {
        return Err(GraphError::Corrupt(format!(
            "trailing bytes after snapshot body: {} left over",
            buf.len()
        )));
    }
    let mut g = builder.build();
    // Re-assemble with labels/names: the builder used index mode, so we
    // attach metadata through from_parts for exact reconstruction.
    let layers = g.layers().to_vec();
    g = MultiLayerGraph::from_parts(layers, labels, names);
    Ok(g)
}

/// Writes a binary snapshot of `g` to `path`.
pub fn write_binary<P: AsRef<Path>>(g: &MultiLayerGraph, path: P) -> Result<()> {
    let bytes = to_bytes(g);
    let mut file = std::fs::File::create(path)?;
    file.write_all(&bytes)?;
    Ok(())
}

/// Reads a binary snapshot from `path`.
pub fn read_binary<P: AsRef<Path>>(path: P) -> Result<MultiLayerGraph> {
    let mut file = std::fs::File::open(path)?;
    let mut raw = Vec::new();
    file.read_to_end(&mut raw)?;
    from_bytes(Bytes::from(raw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MultiLayerGraphBuilder;

    fn labeled_graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::with_labels(2);
        b.add_labeled_edge(0, "a", "b").unwrap();
        b.add_labeled_edge(0, "b", "c").unwrap();
        b.add_labeled_edge(1, "a", "c").unwrap();
        b.set_layer_names(&["first", "second"]);
        b.build()
    }

    #[test]
    fn roundtrip_labeled() {
        let g = labeled_graph();
        let bytes = to_bytes(&g);
        let g2 = from_bytes(bytes).unwrap();
        assert_eq!(g, g2);
        assert_eq!(g2.vertex_label(1), Some("b"));
        assert_eq!(g2.layer_name(1), "second");
    }

    #[test]
    fn roundtrip_unlabeled() {
        let g = MultiLayerGraph::from_edge_lists(4, &[vec![(0, 1)], vec![(2, 3), (0, 3)]]).unwrap();
        let g2 = from_bytes(to_bytes(&g)).unwrap();
        assert_eq!(g, g2);
        assert!(g2.vertex_labels().is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = from_bytes(Bytes::from_static(b"NOTAGRPH\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00")).unwrap_err();
        assert!(matches!(err, GraphError::Corrupt(_)));
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn legacy_magic_reported_clearly() {
        let mut raw = Vec::new();
        raw.extend_from_slice(b"MLGRAPH1");
        raw.extend_from_slice(&[0u8; 32]);
        let err = from_bytes(Bytes::from(raw)).unwrap_err();
        assert!(err.to_string().contains("legacy MLGRAPH1"));
    }

    #[test]
    fn wrong_version_rejected() {
        let g = labeled_graph();
        let mut raw = to_bytes(&g).to_vec();
        raw[8] = raw[8].wrapping_add(1);
        let err = from_bytes(Bytes::from(raw)).unwrap_err();
        assert!(err.to_string().contains("unsupported format version"));
    }

    #[test]
    fn every_truncation_fails_with_typed_error() {
        let g = labeled_graph();
        let bytes = to_bytes(&g);
        for cut in 0..bytes.len() {
            let err = from_bytes(bytes.slice(0..cut)).unwrap_err();
            assert!(matches!(err, GraphError::Corrupt(_)), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn byte_flip_fails_checksum() {
        let g = labeled_graph();
        let base = to_bytes(&g).to_vec();
        // Flip a payload byte: the checksum catches it before decode.
        let mut raw = base.clone();
        let mid = 28 + (raw.len() - 28) / 2;
        raw[mid] ^= 0x40;
        let err = from_bytes(Bytes::from(raw)).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "got: {err}");
        // Flip a stored-checksum byte: same typed failure.
        let mut raw = base;
        raw[20] ^= 0x01;
        assert!(from_bytes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let g = labeled_graph();
        let mut raw = to_bytes(&g).to_vec();
        raw.push(0);
        let err = from_bytes(Bytes::from(raw)).unwrap_err();
        // An appended byte shows up as a payload-length mismatch.
        assert!(err.to_string().contains("length mismatch"), "got: {err}");
    }

    #[test]
    fn empty_buffer_rejected() {
        assert!(from_bytes(Bytes::new()).is_err());
    }

    #[test]
    fn frame_helpers_roundtrip() {
        let payload = b"hello index payload";
        let framed = frame(b"DCCINDEX", 7, payload);
        assert_eq!(unframe(b"DCCINDEX", 7, &framed).unwrap(), payload);
        assert!(unframe(b"MLGRAPH2", 7, &framed).is_err());
        assert!(unframe(b"DCCINDEX", 8, &framed).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = labeled_graph();
        let dir = std::env::temp_dir().join("mlgraph_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.bin");
        write_binary(&g, &path).unwrap();
        let g2 = read_binary(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }
}
