//! Compact binary snapshot format for multi-layer graphs.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic      : 8 bytes  b"MLGRAPH1"
//! n          : u64      number of vertices
//! l          : u64      number of layers
//! per layer  : u64 edge count, then edge pairs as (u32, u32)
//! labels flag: u8       1 if vertex labels follow
//! labels     : for each vertex: u32 length + utf-8 bytes
//! layer names: for each layer: u32 length + utf-8 bytes
//! ```
//!
//! The format is intentionally simple: it exists so generated experiment
//! datasets can be cached on disk and re-loaded quickly.

use crate::builder::MultiLayerGraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::MultiLayerGraph;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"MLGRAPH1";

/// Serializes `g` into a byte buffer.
pub fn to_bytes(g: &MultiLayerGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + g.total_edges() * 8);
    buf.put_slice(MAGIC);
    buf.put_u64_le(g.num_vertices() as u64);
    buf.put_u64_le(g.num_layers() as u64);
    for layer in g.layers() {
        buf.put_u64_le(layer.num_edges() as u64);
        for (u, v) in layer.edges() {
            buf.put_u32_le(u);
            buf.put_u32_le(v);
        }
    }
    match g.vertex_labels() {
        Some(labels) => {
            buf.put_u8(1);
            for label in labels {
                buf.put_u32_le(label.len() as u32);
                buf.put_slice(label.as_bytes());
            }
        }
        None => buf.put_u8(0),
    }
    for i in 0..g.num_layers() {
        let name = g.layer_name(i);
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
    }
    buf.freeze()
}

fn ensure(buf: &Bytes, needed: usize) -> Result<()> {
    if buf.remaining() < needed {
        Err(GraphError::Corrupt(format!(
            "unexpected end of snapshot: need {needed} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

fn read_string(buf: &mut Bytes) -> Result<String> {
    ensure(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    ensure(buf, len)?;
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec())
        .map_err(|_| GraphError::Corrupt("string field is not valid utf-8".into()))
}

/// Deserializes a graph from a byte buffer produced by [`to_bytes`].
pub fn from_bytes(mut buf: Bytes) -> Result<MultiLayerGraph> {
    ensure(&buf, MAGIC.len())?;
    let magic = buf.copy_to_bytes(MAGIC.len());
    if magic.as_ref() != MAGIC {
        return Err(GraphError::Corrupt("bad magic; not an MLGRAPH1 snapshot".into()));
    }
    ensure(&buf, 16)?;
    let n = buf.get_u64_le() as usize;
    let l = buf.get_u64_le() as usize;
    if l == 0 {
        return Err(GraphError::Corrupt("snapshot declares zero layers".into()));
    }
    let mut builder = MultiLayerGraphBuilder::new(n, l);
    for layer in 0..l {
        ensure(&buf, 8)?;
        let m = buf.get_u64_le() as usize;
        ensure(&buf, m * 8)?;
        for _ in 0..m {
            let u = buf.get_u32_le();
            let v = buf.get_u32_le();
            builder
                .add_edge(layer, u, v)
                .map_err(|e| GraphError::Corrupt(format!("invalid edge in snapshot: {e}")))?;
        }
    }
    ensure(&buf, 1)?;
    let has_labels = buf.get_u8() == 1;
    let labels = if has_labels {
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            labels.push(read_string(&mut buf)?);
        }
        Some(labels)
    } else {
        None
    };
    let mut names = Vec::with_capacity(l);
    for _ in 0..l {
        names.push(read_string(&mut buf)?);
    }
    let mut g = builder.build();
    // Re-assemble with labels/names: the builder used index mode, so we
    // attach metadata through from_parts for exact reconstruction.
    let layers = g.layers().to_vec();
    g = MultiLayerGraph::from_parts(layers, labels, names);
    Ok(g)
}

/// Writes a binary snapshot of `g` to `path`.
pub fn write_binary<P: AsRef<Path>>(g: &MultiLayerGraph, path: P) -> Result<()> {
    let bytes = to_bytes(g);
    let mut file = std::fs::File::create(path)?;
    file.write_all(&bytes)?;
    Ok(())
}

/// Reads a binary snapshot from `path`.
pub fn read_binary<P: AsRef<Path>>(path: P) -> Result<MultiLayerGraph> {
    let mut file = std::fs::File::open(path)?;
    let mut raw = Vec::new();
    file.read_to_end(&mut raw)?;
    from_bytes(Bytes::from(raw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MultiLayerGraphBuilder;

    fn labeled_graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::with_labels(2);
        b.add_labeled_edge(0, "a", "b").unwrap();
        b.add_labeled_edge(0, "b", "c").unwrap();
        b.add_labeled_edge(1, "a", "c").unwrap();
        b.set_layer_names(&["first", "second"]);
        b.build()
    }

    #[test]
    fn roundtrip_labeled() {
        let g = labeled_graph();
        let bytes = to_bytes(&g);
        let g2 = from_bytes(bytes).unwrap();
        assert_eq!(g, g2);
        assert_eq!(g2.vertex_label(1), Some("b"));
        assert_eq!(g2.layer_name(1), "second");
    }

    #[test]
    fn roundtrip_unlabeled() {
        let g = MultiLayerGraph::from_edge_lists(4, &[vec![(0, 1)], vec![(2, 3), (0, 3)]]).unwrap();
        let g2 = from_bytes(to_bytes(&g)).unwrap();
        assert_eq!(g, g2);
        assert!(g2.vertex_labels().is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = from_bytes(Bytes::from_static(b"NOTAGRPH\x00\x00")).unwrap_err();
        assert!(matches!(err, GraphError::Corrupt(_)));
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let g = labeled_graph();
        let bytes = to_bytes(&g);
        let truncated = bytes.slice(0..bytes.len() / 2);
        assert!(from_bytes(truncated).is_err());
    }

    #[test]
    fn empty_buffer_rejected() {
        assert!(from_bytes(Bytes::new()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = labeled_graph();
        let dir = std::env::temp_dir().join("mlgraph_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.bin");
        write_binary(&g, &path).unwrap();
        let g2 = read_binary(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }
}
