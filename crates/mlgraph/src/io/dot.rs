//! Graphviz DOT export of induced multi-layer subgraphs.
//!
//! The paper's Fig. 31 draws the subgraphs induced by `Cov(R_C)` and
//! `Cov(R_Q)` with a three-way vertex colouring. [`induced_subgraph_dot`]
//! produces an equivalent picture: one DOT graph per layer (or the union
//! layer), vertices coloured by membership class.

use crate::bitset::VertexSet;
use crate::graph::MultiLayerGraph;
use std::fmt::Write as _;

/// Options controlling the DOT rendering.
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Which layer to draw, or `None` for the union graph.
    pub layer: Option<usize>,
    /// Graph name used in the DOT header.
    pub name: String,
    /// Highlight classes: vertices in the first set are drawn red, vertices
    /// only in the second green, vertices only in the third blue. Vertices in
    /// none of the sets are grey.
    pub highlight: Vec<(String, VertexSet)>,
}

impl DotOptions {
    /// Default options: union graph, no highlighting.
    pub fn union(name: &str) -> Self {
        DotOptions { layer: None, name: name.to_string(), highlight: Vec::new() }
    }
}

const PALETTE: &[&str] = &["red", "green", "blue", "orange", "purple"];

/// Renders the subgraph of `g` induced by `within` as an undirected DOT
/// graph. Vertex labels are used when present.
pub fn induced_subgraph_dot(g: &MultiLayerGraph, within: &VertexSet, opts: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{}\" {{", opts.name);
    let _ = writeln!(out, "  node [shape=circle, style=filled];");
    for v in within.iter() {
        let label = g.vertex_label(v).map(str::to_string).unwrap_or_else(|| v.to_string());
        let mut color = "lightgrey";
        for (idx, (_, set)) in opts.highlight.iter().enumerate() {
            if set.contains(v) {
                color = PALETTE[idx % PALETTE.len()];
                break;
            }
        }
        let _ = writeln!(out, "  v{v} [label=\"{label}\", fillcolor={color}];");
    }
    let union;
    let edges: Box<dyn Iterator<Item = (u32, u32)>> = match opts.layer {
        Some(i) => Box::new(g.layer(i).edges()),
        None => {
            union = g.union_graph();
            Box::new(union.edges().collect::<Vec<_>>().into_iter())
        }
    };
    for (u, v) in edges {
        if within.contains(u) && within.contains(v) {
            let _ = writeln!(out, "  v{u} -- v{v};");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MultiLayerGraphBuilder;

    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::with_labels(2);
        b.add_labeled_edge(0, "a", "b").unwrap();
        b.add_labeled_edge(0, "b", "c").unwrap();
        b.add_labeled_edge(1, "a", "c").unwrap();
        b.build()
    }

    #[test]
    fn union_export_contains_all_edges() {
        let g = graph();
        let all = VertexSet::full(3);
        let dot = induced_subgraph_dot(&g, &all, &DotOptions::union("toy"));
        assert!(dot.starts_with("graph \"toy\""));
        assert!(dot.contains("v0 -- v1"));
        assert!(dot.contains("v0 -- v2"));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn single_layer_export_filters_edges() {
        let g = graph();
        let all = VertexSet::full(3);
        let opts = DotOptions { layer: Some(1), name: "layer1".into(), highlight: vec![] };
        let dot = induced_subgraph_dot(&g, &all, &opts);
        assert!(dot.contains("v0 -- v2"));
        assert!(!dot.contains("v0 -- v1"));
    }

    #[test]
    fn highlighting_assigns_colors_by_priority() {
        let g = graph();
        let all = VertexSet::full(3);
        let both = VertexSet::from_iter(3, [0]);
        let only_second = VertexSet::from_iter(3, [0, 1]);
        let opts = DotOptions {
            layer: None,
            name: "colors".into(),
            highlight: vec![("both".into(), both), ("second".into(), only_second)],
        };
        let dot = induced_subgraph_dot(&g, &all, &opts);
        assert!(dot.contains("v0 [label=\"a\", fillcolor=red]"));
        assert!(dot.contains("v1 [label=\"b\", fillcolor=green]"));
        assert!(dot.contains("v2 [label=\"c\", fillcolor=lightgrey]"));
    }

    #[test]
    fn vertices_outside_mask_are_omitted() {
        let g = graph();
        let some = VertexSet::from_iter(3, [0, 1]);
        let dot = induced_subgraph_dot(&g, &some, &DotOptions::union("partial"));
        assert!(!dot.contains("v2 ["));
        assert!(!dot.contains("v0 -- v2"));
    }
}
