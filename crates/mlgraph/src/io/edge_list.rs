//! Plain-text multi-layer edge list format.
//!
//! Each non-empty, non-comment line is `src dst layer`, whitespace-separated.
//! Vertices are arbitrary string labels (interned in first-seen order);
//! layers are non-negative integers. Lines starting with `#` or `%` are
//! comments.
//!
//! ```text
//! # a tiny two-layer graph
//! a b 0
//! b c 0
//! a c 1
//! ```

use crate::builder::MultiLayerGraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::MultiLayerGraph;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Parses the edge-list format from any buffered reader.
pub fn parse_edge_list<R: BufRead>(reader: R) -> Result<MultiLayerGraph> {
    let mut records: Vec<(String, String, usize)> = Vec::new();
    let mut max_layer = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(src), Some(dst), Some(layer)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(GraphError::Parse {
                line: line_no,
                message: format!("expected `src dst layer`, got `{trimmed}`"),
            });
        };
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                message: "too many fields; expected exactly 3".into(),
            });
        }
        let layer: usize = layer.parse().map_err(|_| GraphError::Parse {
            line: line_no,
            message: format!("layer `{layer}` is not a non-negative integer"),
        })?;
        max_layer = max_layer.max(layer);
        records.push((src.to_string(), dst.to_string(), layer));
    }
    if records.is_empty() {
        return Err(GraphError::InvalidArgument("edge list contains no edges".into()));
    }
    let mut builder = MultiLayerGraphBuilder::with_labels(max_layer + 1);
    for (idx, (src, dst, layer)) in records.iter().enumerate() {
        builder.add_labeled_edge(*layer, src, dst).map_err(|e| match e {
            GraphError::SelfLoop { vertex } => GraphError::Parse {
                line: idx + 1,
                message: format!("self loop on vertex {vertex} (label `{src}`)"),
            },
            other => other,
        })?;
    }
    Ok(builder.build())
}

/// Reads the edge-list format from a file path.
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> Result<MultiLayerGraph> {
    let file = std::fs::File::open(path)?;
    parse_edge_list(BufReader::new(file))
}

/// Writes `g` in the edge-list format. Vertex labels are used when present,
/// otherwise the numeric index is written.
pub fn write_edge_list<W: Write>(g: &MultiLayerGraph, mut writer: W) -> Result<()> {
    writeln!(writer, "# multi-layer edge list: src dst layer")?;
    writeln!(writer, "# vertices={} layers={}", g.num_vertices(), g.num_layers())?;
    for (i, layer) in g.layers().iter().enumerate() {
        for (u, v) in layer.edges() {
            match (g.vertex_label(u), g.vertex_label(v)) {
                (Some(lu), Some(lv)) => writeln!(writer, "{lu} {lv} {i}")?,
                _ => writeln!(writer, "{u} {v} {i}")?,
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "# comment\n\
        a b 0\n\
        b c 0\n\
        % another comment\n\
        \n\
        a c 1\n";

    #[test]
    fn parses_sample() {
        let g = parse_edge_list(Cursor::new(SAMPLE)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_layers(), 2);
        assert_eq!(g.layer(0).num_edges(), 2);
        assert_eq!(g.layer(1).num_edges(), 1);
        assert_eq!(g.vertex_label(0), Some("a"));
    }

    #[test]
    fn rejects_missing_fields() {
        let err = parse_edge_list(Cursor::new("a b\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_extra_fields() {
        let err = parse_edge_list(Cursor::new("a b 0 extra\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn rejects_non_numeric_layer() {
        let err = parse_edge_list(Cursor::new("a b x\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn rejects_empty_input() {
        let err = parse_edge_list(Cursor::new("# only comments\n")).unwrap_err();
        assert!(matches!(err, GraphError::InvalidArgument(_)));
    }

    #[test]
    fn rejects_self_loop() {
        let err = parse_edge_list(Cursor::new("a a 0\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn roundtrip_write_then_parse() {
        let g = parse_edge_list(Cursor::new(SAMPLE)).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = parse_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_layers(), g.num_layers());
        assert_eq!(g2.total_edges(), g.total_edges());
    }

    #[test]
    fn file_roundtrip() {
        let g = parse_edge_list(Cursor::new(SAMPLE)).unwrap();
        let dir = std::env::temp_dir().join("mlgraph_edge_list_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.edges");
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();
        let g2 = read_edge_list(&path).unwrap();
        assert_eq!(g2.total_edges(), g.total_edges());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unlabeled_graph_written_with_indices() {
        let g = MultiLayerGraph::from_edge_lists(3, &[vec![(0, 1), (1, 2)]]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("0 1 0"));
        assert!(text.contains("1 2 0"));
    }
}
