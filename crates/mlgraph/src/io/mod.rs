//! Readers and writers for multi-layer graphs.
//!
//! * [`edge_list`] — the plain-text `src dst layer` format (one record per
//!   line, `#` comments), the format we use for dataset files on disk.
//! * [`binary`] — a compact little-endian binary snapshot built on
//!   [`bytes`], suitable for caching generated datasets between experiment
//!   runs.
//! * [`dot`] — Graphviz DOT export of an induced subgraph, used to produce
//!   the Fig. 31-style qualitative pictures.

pub mod binary;
pub mod dot;
pub mod edge_list;

pub use binary::{checksum64, frame, read_binary, unframe, write_binary};
pub use dot::{induced_subgraph_dot, DotOptions};
pub use edge_list::{parse_edge_list, read_edge_list, write_edge_list};
