//! Runtime-dispatched bit kernels — the one place every word-level bitset
//! loop in the workspace lives.
//!
//! Every DCCS algorithm bottoms out in the same handful of primitives over
//! packed `u64` words: AND/ANDNOT/OR combines with a popcount reduction.
//! Before this layer existed those loops were hand-rolled scalar code
//! scattered across `mlgraph::bitset`, `mlgraph::dense`,
//! `coreness::workspace`, and the dense lattice walk; now they all route
//! through one [`BitKernel`] implementation selected **once per process**:
//!
//! | kernel     | what it is                                              |
//! |------------|---------------------------------------------------------|
//! | `scalar`   | one word per iteration — the reference implementation   |
//! | `unrolled` | 4×-unrolled portable loop (`u64x4`-style, 4 independent |
//! |            | accumulators so the popcounts pipeline)                 |
//! | `avx2`     | 256-bit lanes with a SWAR nibble-lookup popcount        |
//! |            | (`x86_64` only, behind runtime feature detection)       |
//!
//! Selection order: the `DCCS_FORCE_KERNEL=scalar|unrolled|avx2`
//! environment variable (CI determinism and A/B measurements) wins;
//! otherwise `avx2` when the CPU supports it, else `unrolled`. All three
//! kernels are **bit-identical** on every input — forcing one changes
//! wall-clock time only — which is enforced by the property suite in
//! `crates/mlgraph/tests/kernel_property.rs`.
//!
//! Counting semantics: the `*_count` return value is the popcount of the
//! words the operation wrote (or, for [`BitKernel::and_count`], of the
//! intersection), which is what keeps [`crate::VertexSet::len`] O(1).
//! `and_count` zips to the shorter slice (zero-extension — a missing word
//! intersects to nothing); the assign/in-place ops require equal lengths.

#![allow(unsafe_code)] // the AVX2 kernel: audited intrinsics behind runtime detection

use std::sync::OnceLock;

/// Which [`BitKernel`] implementation a handle dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// Word-at-a-time reference loops.
    Scalar,
    /// 4×-unrolled portable loops (independent accumulators).
    Unrolled,
    /// AVX2 256-bit lanes (`x86_64` with runtime feature detection).
    Avx2,
}

impl KernelKind {
    /// Lower-case name, matching the `DCCS_FORCE_KERNEL` values.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Unrolled => "unrolled",
            KernelKind::Avx2 => "avx2",
        }
    }

    /// Parses a `DCCS_FORCE_KERNEL` value.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelKind::Scalar),
            "unrolled" | "u64x4" => Some(KernelKind::Unrolled),
            "avx2" => Some(KernelKind::Avx2),
            _ => None,
        }
    }
}

/// The word-level primitive set every bitset operation is built from.
///
/// Implementations must be bit-identical: for any inputs, every method
/// writes the same words and returns the same count on all kernels. Length
/// contracts: `and_count` zips to the shorter operand (zero-extension);
/// every other method requires `out`/`acc` and its operands to have equal
/// lengths and panics (in debug) otherwise.
pub trait BitKernel: Send + Sync {
    /// Which implementation this is.
    fn kind(&self) -> KernelKind;

    /// `out[i] = a[i] & b[i]`; returns the popcount of `out`.
    fn and_assign_count(&self, out: &mut [u64], a: &[u64], b: &[u64]) -> usize;

    /// `out[i] = a[i] & !b[i]`; returns the popcount of `out`.
    fn andnot_assign_count(&self, out: &mut [u64], a: &[u64], b: &[u64]) -> usize;

    /// `acc[i] &= b[i]`; returns the popcount of `acc`.
    fn and_inplace_count(&self, acc: &mut [u64], b: &[u64]) -> usize;

    /// `acc[i] |= b[i]`; returns the popcount of `acc`.
    fn or_inplace_count(&self, acc: &mut [u64], b: &[u64]) -> usize;

    /// `acc[i] &= !b[i]`; returns the popcount of `acc`.
    fn andnot_inplace_count(&self, acc: &mut [u64], b: &[u64]) -> usize;

    /// Popcount of the elementwise AND, zipped to the shorter slice.
    fn and_count(&self, a: &[u64], b: &[u64]) -> usize;

    /// Number of ids in the ascending run `sorted` whose bit is set in the
    /// packed bitset `words`. Ids at or beyond `words.len() * 64` count as
    /// absent (zero-extension, matching [`BitKernel::and_count`]). This is
    /// the CSR peel's inner loop: an adjacency run intersected with the
    /// alive set, counted word-wise instead of via pointer-chased
    /// `contains` calls.
    fn sorted_and_count(&self, sorted: &[u32], words: &[u64]) -> usize {
        scalar_sorted_and_count(sorted, words)
    }
}

/// Whether bit `v` is set in the packed words (absent past the end).
#[inline(always)]
fn word_test(words: &[u64], v: u32) -> bool {
    let w = (v >> 6) as usize;
    w < words.len() && (words[w] >> (v & 63)) & 1 == 1
}

/// Reference implementation of [`BitKernel::sorted_and_count`]: one id per
/// iteration.
#[inline]
fn scalar_sorted_and_count(sorted: &[u32], words: &[u64]) -> usize {
    sorted.iter().filter(|&&v| word_test(words, v)).count()
}

/// 4×-unrolled [`BitKernel::sorted_and_count`] with independent
/// accumulators, so the dependent load→test chains of neighboring ids
/// overlap. Bit-identical to the scalar walk.
#[inline]
fn unrolled_sorted_and_count(sorted: &[u32], words: &[u64]) -> usize {
    let n = sorted.len();
    let chunks = n / 4 * 4;
    let (mut c0, mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize, 0usize);
    let mut i = 0;
    while i < chunks {
        c0 += word_test(words, sorted[i]) as usize;
        c1 += word_test(words, sorted[i + 1]) as usize;
        c2 += word_test(words, sorted[i + 2]) as usize;
        c3 += word_test(words, sorted[i + 3]) as usize;
        i += 4;
    }
    let mut count = c0 + c1 + c2 + c3;
    while i < n {
        count += word_test(words, sorted[i]) as usize;
        i += 1;
    }
    count
}

// ---------------------------------------------------------------------------
// Scalar reference kernel.
// ---------------------------------------------------------------------------

/// Word-at-a-time reference implementation; the other kernels are tested
/// against it.
struct ScalarKernel;

impl BitKernel for ScalarKernel {
    fn kind(&self) -> KernelKind {
        KernelKind::Scalar
    }

    fn and_assign_count(&self, out: &mut [u64], a: &[u64], b: &[u64]) -> usize {
        debug_assert!(out.len() == a.len() && a.len() == b.len());
        let mut count = 0usize;
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x & y;
            count += o.count_ones() as usize;
        }
        count
    }

    fn andnot_assign_count(&self, out: &mut [u64], a: &[u64], b: &[u64]) -> usize {
        debug_assert!(out.len() == a.len() && a.len() == b.len());
        let mut count = 0usize;
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x & !y;
            count += o.count_ones() as usize;
        }
        count
    }

    fn and_inplace_count(&self, acc: &mut [u64], b: &[u64]) -> usize {
        debug_assert_eq!(acc.len(), b.len());
        let mut count = 0usize;
        for (a, &y) in acc.iter_mut().zip(b) {
            *a &= y;
            count += a.count_ones() as usize;
        }
        count
    }

    fn or_inplace_count(&self, acc: &mut [u64], b: &[u64]) -> usize {
        debug_assert_eq!(acc.len(), b.len());
        let mut count = 0usize;
        for (a, &y) in acc.iter_mut().zip(b) {
            *a |= y;
            count += a.count_ones() as usize;
        }
        count
    }

    fn andnot_inplace_count(&self, acc: &mut [u64], b: &[u64]) -> usize {
        debug_assert_eq!(acc.len(), b.len());
        let mut count = 0usize;
        for (a, &y) in acc.iter_mut().zip(b) {
            *a &= !y;
            count += a.count_ones() as usize;
        }
        count
    }

    fn and_count(&self, a: &[u64], b: &[u64]) -> usize {
        a.iter().zip(b).map(|(&x, &y)| (x & y).count_ones() as usize).sum()
    }
}

// ---------------------------------------------------------------------------
// 4×-unrolled portable kernel.
// ---------------------------------------------------------------------------

/// Portable `u64x4`-style kernel: four words per iteration with four
/// independent popcount accumulators, so the `popcnt` results pipeline
/// instead of serializing on one register.
struct UnrolledKernel;

macro_rules! unrolled_binop_count {
    ($out:expr, $a:expr, $b:expr, $op:expr) => {{
        let out: &mut [u64] = $out;
        let a: &[u64] = $a;
        let b: &[u64] = $b;
        debug_assert!(out.len() == a.len() && a.len() == b.len());
        let n = out.len();
        let chunks = n / 4 * 4;
        let (mut c0, mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize, 0usize);
        let mut i = 0;
        while i < chunks {
            let w0 = $op(a[i], b[i]);
            let w1 = $op(a[i + 1], b[i + 1]);
            let w2 = $op(a[i + 2], b[i + 2]);
            let w3 = $op(a[i + 3], b[i + 3]);
            out[i] = w0;
            out[i + 1] = w1;
            out[i + 2] = w2;
            out[i + 3] = w3;
            c0 += w0.count_ones() as usize;
            c1 += w1.count_ones() as usize;
            c2 += w2.count_ones() as usize;
            c3 += w3.count_ones() as usize;
            i += 4;
        }
        let mut count = c0 + c1 + c2 + c3;
        while i < n {
            let w = $op(a[i], b[i]);
            out[i] = w;
            count += w.count_ones() as usize;
            i += 1;
        }
        count
    }};
}

macro_rules! unrolled_inplace_count {
    ($acc:expr, $b:expr, $op:expr) => {{
        let acc: &mut [u64] = $acc;
        let b: &[u64] = $b;
        debug_assert_eq!(acc.len(), b.len());
        let n = acc.len();
        let chunks = n / 4 * 4;
        let (mut c0, mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize, 0usize);
        let mut i = 0;
        while i < chunks {
            let w0 = $op(acc[i], b[i]);
            let w1 = $op(acc[i + 1], b[i + 1]);
            let w2 = $op(acc[i + 2], b[i + 2]);
            let w3 = $op(acc[i + 3], b[i + 3]);
            acc[i] = w0;
            acc[i + 1] = w1;
            acc[i + 2] = w2;
            acc[i + 3] = w3;
            c0 += w0.count_ones() as usize;
            c1 += w1.count_ones() as usize;
            c2 += w2.count_ones() as usize;
            c3 += w3.count_ones() as usize;
            i += 4;
        }
        let mut count = c0 + c1 + c2 + c3;
        while i < n {
            let w = $op(acc[i], b[i]);
            acc[i] = w;
            count += w.count_ones() as usize;
            i += 1;
        }
        count
    }};
}

impl BitKernel for UnrolledKernel {
    fn kind(&self) -> KernelKind {
        KernelKind::Unrolled
    }

    fn and_assign_count(&self, out: &mut [u64], a: &[u64], b: &[u64]) -> usize {
        unrolled_binop_count!(out, a, b, |x: u64, y: u64| x & y)
    }

    fn andnot_assign_count(&self, out: &mut [u64], a: &[u64], b: &[u64]) -> usize {
        unrolled_binop_count!(out, a, b, |x: u64, y: u64| x & !y)
    }

    fn and_inplace_count(&self, acc: &mut [u64], b: &[u64]) -> usize {
        unrolled_inplace_count!(acc, b, |x: u64, y: u64| x & y)
    }

    fn or_inplace_count(&self, acc: &mut [u64], b: &[u64]) -> usize {
        unrolled_inplace_count!(acc, b, |x: u64, y: u64| x | y)
    }

    fn andnot_inplace_count(&self, acc: &mut [u64], b: &[u64]) -> usize {
        unrolled_inplace_count!(acc, b, |x: u64, y: u64| x & !y)
    }

    fn sorted_and_count(&self, sorted: &[u32], words: &[u64]) -> usize {
        unrolled_sorted_and_count(sorted, words)
    }

    fn and_count(&self, a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let chunks = n / 4 * 4;
        let (mut c0, mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize, 0usize);
        let mut i = 0;
        while i < chunks {
            c0 += (a[i] & b[i]).count_ones() as usize;
            c1 += (a[i + 1] & b[i + 1]).count_ones() as usize;
            c2 += (a[i + 2] & b[i + 2]).count_ones() as usize;
            c3 += (a[i + 3] & b[i + 3]).count_ones() as usize;
            i += 4;
        }
        let mut count = c0 + c1 + c2 + c3;
        while i < n {
            count += (a[i] & b[i]).count_ones() as usize;
            i += 1;
        }
        count
    }
}

// ---------------------------------------------------------------------------
// AVX2 kernel (x86_64 only, runtime-detected).
// ---------------------------------------------------------------------------

/// 256-bit AVX2 kernel. Combines run four words per lane; the popcount is
/// the classic nibble-lookup (`vpshufb` against a 0..15 popcount table,
/// reduced with `vpsadbw`), accumulated across the loop in one vector
/// register and summed once at the end. Tails shorter than four words fall
/// back to the scalar loop.
///
/// Only handed out after `is_x86_feature_detected!("avx2")` succeeded (see
/// [`kernel_for`]), so the `#[target_feature]` calls are sound.
#[cfg(target_arch = "x86_64")]
struct Avx2Kernel;

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_andnot_si256,
        _mm256_extract_epi64, _mm256_loadu_si256, _mm256_or_si256, _mm256_sad_epu8,
        _mm256_set1_epi8, _mm256_setr_epi8, _mm256_setzero_si256, _mm256_shuffle_epi8,
        _mm256_srli_epi16, _mm256_storeu_si256,
    };

    /// Per-byte popcount of `v` summed into four u64 lane counters
    /// (Mula's nibble-lookup popcount).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcount_lanes(v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lookup = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
        let counts =
            _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo), _mm256_shuffle_epi8(lookup, hi));
        _mm256_sad_epu8(counts, _mm256_setzero_si256())
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn horizontal_sum(acc: __m256i) -> usize {
        (_mm256_extract_epi64(acc, 0)
            + _mm256_extract_epi64(acc, 1)
            + _mm256_extract_epi64(acc, 2)
            + _mm256_extract_epi64(acc, 3)) as usize
    }

    /// Generates one `a OP b → out, popcount` AVX2 routine with a scalar
    /// tail; `$combine` is the vector op, `$scalar` the word op.
    macro_rules! avx2_binop {
        ($name:ident, $combine:expr, $scalar:expr) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(out: *mut u64, a: *const u64, b: *const u64, n: usize) -> usize {
                let mut acc = _mm256_setzero_si256();
                let lanes = n / 4 * 4;
                let mut i = 0;
                while i < lanes {
                    let va = _mm256_loadu_si256(a.add(i).cast());
                    let vb = _mm256_loadu_si256(b.add(i).cast());
                    let v = $combine(va, vb);
                    _mm256_storeu_si256(out.add(i).cast(), v);
                    acc = _mm256_add_epi64(acc, popcount_lanes(v));
                    i += 4;
                }
                let mut count = horizontal_sum(acc);
                while i < n {
                    let w: u64 = $scalar(*a.add(i), *b.add(i));
                    *out.add(i) = w;
                    count += w.count_ones() as usize;
                    i += 1;
                }
                count
            }
        };
    }

    // `_mm256_andnot_si256(x, y)` computes `!x & y`, so the operands are
    // swapped to express `a & !b`.
    avx2_binop!(and_assign, |x, y| _mm256_and_si256(x, y), |x: u64, y: u64| x & y);
    avx2_binop!(andnot_assign, |x, y| _mm256_andnot_si256(y, x), |x: u64, y: u64| x & !y);
    avx2_binop!(or_assign, |x, y| _mm256_or_si256(x, y), |x: u64, y: u64| x | y);

    /// Popcount of `a & b` without writing anywhere.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_count(a: *const u64, b: *const u64, n: usize) -> usize {
        let mut acc = _mm256_setzero_si256();
        let lanes = n / 4 * 4;
        let mut i = 0;
        while i < lanes {
            let va = _mm256_loadu_si256(a.add(i).cast());
            let vb = _mm256_loadu_si256(b.add(i).cast());
            acc = _mm256_add_epi64(acc, popcount_lanes(_mm256_and_si256(va, vb)));
            i += 4;
        }
        let mut count = horizontal_sum(acc);
        while i < n {
            count += (*a.add(i) & *b.add(i)).count_ones() as usize;
            i += 1;
        }
        count
    }
}

#[cfg(target_arch = "x86_64")]
impl BitKernel for Avx2Kernel {
    fn kind(&self) -> KernelKind {
        KernelKind::Avx2
    }

    fn and_assign_count(&self, out: &mut [u64], a: &[u64], b: &[u64]) -> usize {
        debug_assert!(out.len() == a.len() && a.len() == b.len());
        // SAFETY: this kernel is only obtainable after AVX2 detection, and
        // the slices have equal length by contract.
        unsafe { avx2::and_assign(out.as_mut_ptr(), a.as_ptr(), b.as_ptr(), out.len()) }
    }

    fn andnot_assign_count(&self, out: &mut [u64], a: &[u64], b: &[u64]) -> usize {
        debug_assert!(out.len() == a.len() && a.len() == b.len());
        // SAFETY: as above.
        unsafe { avx2::andnot_assign(out.as_mut_ptr(), a.as_ptr(), b.as_ptr(), out.len()) }
    }

    fn and_inplace_count(&self, acc: &mut [u64], b: &[u64]) -> usize {
        debug_assert_eq!(acc.len(), b.len());
        // One pointer derived from the &mut, used for both the loads and
        // the stores — a separate `acc.as_ptr()` reborrow would be
        // invalidated by the first store under the aliasing model. The
        // same-lane load completes before its store, and lanes never
        // overlap.
        let p = acc.as_mut_ptr();
        // SAFETY: this kernel is only obtainable after AVX2 detection, and
        // the slices have equal length by contract.
        unsafe { avx2::and_assign(p, p.cast_const(), b.as_ptr(), acc.len()) }
    }

    fn or_inplace_count(&self, acc: &mut [u64], b: &[u64]) -> usize {
        debug_assert_eq!(acc.len(), b.len());
        let p = acc.as_mut_ptr();
        // SAFETY: as for `and_inplace_count`.
        unsafe { avx2::or_assign(p, p.cast_const(), b.as_ptr(), acc.len()) }
    }

    fn andnot_inplace_count(&self, acc: &mut [u64], b: &[u64]) -> usize {
        debug_assert_eq!(acc.len(), b.len());
        let p = acc.as_mut_ptr();
        // SAFETY: as for `and_inplace_count`.
        unsafe { avx2::andnot_assign(p, p.cast_const(), b.as_ptr(), acc.len()) }
    }

    fn and_count(&self, a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        // SAFETY: both slices hold at least `n` words.
        unsafe { avx2::and_count(a.as_ptr(), b.as_ptr(), n) }
    }

    // Gathered bit tests don't vectorize profitably on AVX2 (no scatter,
    // and `vpgatherdd` loses to scalar loads on most cores); the unrolled
    // walk is the fastest portable form here too.
    fn sorted_and_count(&self, sorted: &[u32], words: &[u64]) -> usize {
        unrolled_sorted_and_count(sorted, words)
    }
}

// ---------------------------------------------------------------------------
// Selection.
// ---------------------------------------------------------------------------

static SCALAR: ScalarKernel = ScalarKernel;
static UNROLLED: UnrolledKernel = UnrolledKernel;
#[cfg(target_arch = "x86_64")]
static AVX2: Avx2Kernel = Avx2Kernel;

/// The kernel for an explicit [`KernelKind`], or `None` when this host
/// cannot run it (AVX2 on a CPU without it, or off `x86_64`). Used by the
/// equivalence property tests and the `kernel_dispatch` bench group, which
/// compare implementations inside one process.
pub fn kernel_for(kind: KernelKind) -> Option<&'static dyn BitKernel> {
    match kind {
        KernelKind::Scalar => Some(&SCALAR),
        KernelKind::Unrolled => Some(&UNROLLED),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 => {
            if std::arch::is_x86_feature_detected!("avx2") {
                Some(&AVX2)
            } else {
                None
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        KernelKind::Avx2 => None,
    }
}

/// Every kernel this host can run, scalar first.
pub fn available_kernels() -> Vec<&'static dyn BitKernel> {
    [KernelKind::Scalar, KernelKind::Unrolled, KernelKind::Avx2]
        .into_iter()
        .filter_map(kernel_for)
        .collect()
}

fn select() -> &'static dyn BitKernel {
    if let Ok(forced) = std::env::var("DCCS_FORCE_KERNEL") {
        let kind = KernelKind::parse(&forced).unwrap_or_else(|| {
            panic!("DCCS_FORCE_KERNEL={forced}: expected scalar, unrolled, or avx2")
        });
        return kernel_for(kind).unwrap_or_else(|| {
            panic!("DCCS_FORCE_KERNEL={forced}: this host cannot run that kernel")
        });
    }
    kernel_for(KernelKind::Avx2).unwrap_or(&UNROLLED)
}

/// The process-wide dispatched kernel: `DCCS_FORCE_KERNEL` if set (panics
/// on an unknown or unsupported value — it is a CI/A-B knob, not user
/// input), otherwise the fastest the CPU supports. Selected once; every
/// [`crate::VertexSet`] operation and dense-row popcount goes through it.
#[inline]
pub fn kernel() -> &'static dyn BitKernel {
    static SELECTED: OnceLock<&'static dyn BitKernel> = OnceLock::new();
    *SELECTED.get_or_init(select)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic word patterns covering dense, sparse, and empty words.
    fn words(seed: u64, n: usize) -> Vec<u64> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                match i % 5 {
                    0 => 0,
                    1 => !0,
                    _ => state,
                }
            })
            .collect()
    }

    #[test]
    fn all_available_kernels_match_scalar_on_every_op() {
        let scalar = kernel_for(KernelKind::Scalar).unwrap();
        for kernel in available_kernels() {
            for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 33, 64] {
                let a = words(n as u64 + 1, n);
                let b = words(n as u64 + 1000, n);
                let mut out_s = vec![0u64; n];
                let mut out_k = vec![0u64; n];
                let cs = scalar.and_assign_count(&mut out_s, &a, &b);
                let ck = kernel.and_assign_count(&mut out_k, &a, &b);
                assert_eq!((cs, &out_s), (ck, &out_k), "and_assign n={n} {:?}", kernel.kind());
                let cs = scalar.andnot_assign_count(&mut out_s, &a, &b);
                let ck = kernel.andnot_assign_count(&mut out_k, &a, &b);
                assert_eq!((cs, &out_s), (ck, &out_k), "andnot_assign n={n} {:?}", kernel.kind());
                for (op, s_res, k_res) in [
                    (
                        "and_inplace",
                        {
                            let mut acc = a.clone();
                            (scalar.and_inplace_count(&mut acc, &b), acc)
                        },
                        {
                            let mut acc = a.clone();
                            (kernel.and_inplace_count(&mut acc, &b), acc)
                        },
                    ),
                    (
                        "or_inplace",
                        {
                            let mut acc = a.clone();
                            (scalar.or_inplace_count(&mut acc, &b), acc)
                        },
                        {
                            let mut acc = a.clone();
                            (kernel.or_inplace_count(&mut acc, &b), acc)
                        },
                    ),
                    (
                        "andnot_inplace",
                        {
                            let mut acc = a.clone();
                            (scalar.andnot_inplace_count(&mut acc, &b), acc)
                        },
                        {
                            let mut acc = a.clone();
                            (kernel.andnot_inplace_count(&mut acc, &b), acc)
                        },
                    ),
                ] {
                    assert_eq!(s_res, k_res, "{op} n={n} {:?}", kernel.kind());
                }
                assert_eq!(
                    scalar.and_count(&a, &b),
                    kernel.and_count(&a, &b),
                    "and_count n={n} {:?}",
                    kernel.kind()
                );
                // A sorted run spanning the words, including ids past the
                // end (zero-extension) and dense clusters inside one word.
                let sorted: Vec<u32> =
                    (0..(n as u32 * 64 + 7)).filter(|v| v % 3 == 0 || v % 64 < 2).collect();
                assert_eq!(
                    scalar.sorted_and_count(&sorted, &a),
                    kernel.sorted_and_count(&sorted, &a),
                    "sorted_and_count n={n} {:?}",
                    kernel.kind()
                );
            }
        }
    }

    #[test]
    fn and_count_zero_extends_the_shorter_slice() {
        let a = words(3, 10);
        let b = words(4, 6);
        for kernel in available_kernels() {
            assert_eq!(kernel.and_count(&a, &b), kernel.and_count(&b, &a), "{:?}", kernel.kind());
            assert_eq!(
                kernel.and_count(&a, &b),
                kernel.and_count(&a[..6], &b[..6]),
                "{:?}",
                kernel.kind()
            );
        }
    }

    #[test]
    fn kind_parsing_round_trips() {
        for kind in [KernelKind::Scalar, KernelKind::Unrolled, KernelKind::Avx2] {
            assert_eq!(KernelKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(KernelKind::parse("AVX2"), Some(KernelKind::Avx2));
        assert_eq!(KernelKind::parse("sse9"), None);
    }

    #[test]
    fn selection_is_stable_and_available() {
        let first = kernel().kind();
        assert_eq!(kernel().kind(), first);
        assert!(available_kernels().iter().any(|k| k.kind() == first));
    }
}
