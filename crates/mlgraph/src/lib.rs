//! # mlgraph — multi-layer graph substrate
//!
//! This crate provides the data structures and utilities the DCCS algorithms
//! are built on:
//!
//! * [`VertexSet`] — a word-packed bitset over the vertex universe with a
//!   cached cardinality; the workhorse set representation used by every
//!   peeling and coverage routine.
//! * [`Csr`] — a compressed sparse row representation of one undirected
//!   layer (sorted, deduplicated adjacency lists).
//! * [`DenseSubgraph`] — a re-indexed subgraph with per-layer adjacency
//!   bitsets, for word-level peeling over small candidate universes.
//! * [`CompressedVertexSet`] / [`CompressedSubgraph`] — roaring-style
//!   array/bitmap block containers with the same membership semantics,
//!   for huge sparse universes where flat rows cannot exist.
//! * [`intersect`] — sorted-run intersection primitives (linear merge and
//!   galloping search) shared by the CSR kernels and sparse containers.
//! * [`kernels`] — the runtime-dispatched bit-kernel layer (scalar /
//!   4×-unrolled / AVX2) every word-level loop above routes through,
//!   selected once per process and forceable via `DCCS_FORCE_KERNEL`.
//! * [`MultiLayerGraph`] / [`MultiLayerGraphBuilder`] — a set of CSR layers
//!   sharing one vertex universe, with optional vertex and layer labels.
//! * [`EdgeBatch`] — validated per-layer insert/delete batches applied
//!   atomically via [`MultiLayerGraph::apply_batch`], producing the next
//!   graph version plus the effective [`AppliedBatch`] delta.
//! * [`io`] — text edge-list and binary snapshot readers/writers plus DOT
//!   export.
//! * [`generators`] — seeded synthetic multi-layer graph generators
//!   (Erdős–Rényi, planted communities, power-law, temporal snapshots).
//! * [`sample`] — vertex-fraction / layer-fraction down-sampling used by the
//!   scalability experiments.
//! * [`algo`] — small generic graph algorithms (BFS, connected components,
//!   density) used by tests and the analysis tooling.
//!
//! Vertices are dense `u32` indices in `0..n`. All APIs treat layers as
//! `usize` indices in `0..l`.
//!
//! ```
//! use mlgraph::{MultiLayerGraphBuilder, VertexSet};
//!
//! let mut b = MultiLayerGraphBuilder::new(4, 2);
//! b.add_edge(0, 0, 1).unwrap();
//! b.add_edge(0, 1, 2).unwrap();
//! b.add_edge(1, 0, 1).unwrap();
//! let g = b.build();
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.num_layers(), 2);
//! assert_eq!(g.layer(0).degree(1), 2);
//!
//! let mut s = VertexSet::new(4);
//! s.insert(0);
//! s.insert(1);
//! assert_eq!(g.layer(0).degree_within(1, &s), 1);
//! ```

// `deny` rather than `forbid`: the AVX2 bit kernel is the one audited
// exception (see `kernels`); everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod batch;
pub mod bitset;
pub mod builder;
pub mod compressed;
pub mod csr;
pub mod dense;
pub mod error;
pub mod generators;
pub mod graph;
pub mod intersect;
pub mod io;
pub mod kernels;
pub mod sample;
pub mod stats;

pub use batch::{AppliedBatch, EdgeBatch, LayerDelta};
pub use bitset::VertexSet;
pub use builder::MultiLayerGraphBuilder;
pub use compressed::{CompressedSubgraph, CompressedVertexSet};
pub use csr::Csr;
pub use dense::DenseSubgraph;
pub use error::{GraphError, Result};
pub use graph::MultiLayerGraph;
pub use kernels::{BitKernel, KernelKind};
pub use stats::{GraphStats, LayerStats};

/// A vertex identifier: a dense index in `0..n`.
pub type Vertex = u32;

/// A layer identifier: a dense index in `0..l`.
pub type Layer = usize;
