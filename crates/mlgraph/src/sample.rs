//! Down-sampling of multi-layer graphs.
//!
//! The scalability experiments of the paper (Figs. 26–27) vary a vertex
//! fraction `p` and a layer fraction `q`: the input graph is restricted to a
//! random `p`-fraction of its vertices or a random `q`-fraction of its
//! layers. Both samplers are seeded and deterministic.

use crate::bitset::VertexSet;
use crate::error::{GraphError, Result};
use crate::graph::MultiLayerGraph;
use crate::Vertex;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Keeps a uniformly random `p`-fraction of the vertices (at least one) and
/// returns the induced multi-layer subgraph.
///
/// `p` must lie in `(0, 1]`. `p = 1.0` returns a structural copy of `g`.
pub fn sample_vertices(g: &MultiLayerGraph, p: f64, seed: u64) -> Result<MultiLayerGraph> {
    if !(p > 0.0 && p <= 1.0) {
        return Err(GraphError::InvalidArgument(format!(
            "vertex fraction p={p} must be in (0, 1]"
        )));
    }
    let n = g.num_vertices();
    if p >= 1.0 {
        return Ok(g.clone());
    }
    let keep = ((n as f64 * p).round() as usize).clamp(1, n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut vertices: Vec<Vertex> = (0..n as Vertex).collect();
    vertices.shuffle(&mut rng);
    vertices.truncate(keep);
    let set = VertexSet::from_iter(n, vertices);
    let (sub, _) = g.induced_subgraph(&set);
    Ok(sub)
}

/// Keeps a uniformly random `q`-fraction of the layers (at least one),
/// preserving the original relative layer order.
///
/// `q` must lie in `(0, 1]`. `q = 1.0` returns a structural copy of `g`.
pub fn sample_layers(g: &MultiLayerGraph, q: f64, seed: u64) -> Result<MultiLayerGraph> {
    if !(q > 0.0 && q <= 1.0) {
        return Err(GraphError::InvalidArgument(format!("layer fraction q={q} must be in (0, 1]")));
    }
    let l = g.num_layers();
    if q >= 1.0 {
        return Ok(g.clone());
    }
    let keep = ((l as f64 * q).round() as usize).clamp(1, l);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut layers: Vec<usize> = (0..l).collect();
    layers.shuffle(&mut rng);
    layers.truncate(keep);
    layers.sort_unstable();
    g.select_layers(&layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MultiLayerGraphBuilder;

    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(20, 5);
        for layer in 0..5 {
            for v in 0..19u32 {
                b.add_edge(layer, v, v + 1).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn vertex_sampling_keeps_expected_count() {
        let g = graph();
        let s = sample_vertices(&g, 0.5, 7).unwrap();
        assert_eq!(s.num_vertices(), 10);
        assert_eq!(s.num_layers(), 5);
        assert!(s.validate());
    }

    #[test]
    fn vertex_sampling_full_fraction_is_identity() {
        let g = graph();
        let s = sample_vertices(&g, 1.0, 7).unwrap();
        assert_eq!(s.num_vertices(), g.num_vertices());
        assert_eq!(s.total_edges(), g.total_edges());
    }

    #[test]
    fn vertex_sampling_is_deterministic_per_seed() {
        let g = graph();
        let a = sample_vertices(&g, 0.4, 42).unwrap();
        let b = sample_vertices(&g, 0.4, 42).unwrap();
        let c = sample_vertices(&g, 0.4, 43).unwrap();
        assert_eq!(a, b);
        // Different seeds may coincide in shape but typically differ in edges.
        assert_eq!(c.num_vertices(), 8);
    }

    #[test]
    fn vertex_sampling_rejects_bad_fraction() {
        let g = graph();
        assert!(sample_vertices(&g, 0.0, 1).is_err());
        assert!(sample_vertices(&g, 1.5, 1).is_err());
        assert!(sample_vertices(&g, -0.2, 1).is_err());
    }

    #[test]
    fn layer_sampling_keeps_expected_count_and_order() {
        let g = graph();
        let s = sample_layers(&g, 0.6, 11).unwrap();
        assert_eq!(s.num_layers(), 3);
        assert_eq!(s.num_vertices(), 20);
        // Names retain original ordering after sort.
        let names: Vec<_> = s.layer_names().to_vec();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn layer_sampling_full_fraction_is_identity() {
        let g = graph();
        let s = sample_layers(&g, 1.0, 3).unwrap();
        assert_eq!(s.num_layers(), 5);
    }

    #[test]
    fn layer_sampling_minimum_one_layer() {
        let g = graph();
        let s = sample_layers(&g, 0.01, 3).unwrap();
        assert_eq!(s.num_layers(), 1);
    }

    #[test]
    fn layer_sampling_rejects_bad_fraction() {
        let g = graph();
        assert!(sample_layers(&g, 0.0, 1).is_err());
        assert!(sample_layers(&g, 2.0, 1).is_err());
    }
}
