//! Graph statistics mirroring Fig. 12 of the paper (dataset summary table).

use crate::graph::MultiLayerGraph;
use serde::{Deserialize, Serialize};

/// Per-layer statistics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerStats {
    /// Layer index.
    pub layer: usize,
    /// Layer name.
    pub name: String,
    /// Number of edges on this layer.
    pub num_edges: usize,
    /// Number of non-isolated vertices on this layer.
    pub active_vertices: usize,
    /// Maximum degree on this layer.
    pub max_degree: usize,
    /// Average degree over all vertices of the universe.
    pub avg_degree: f64,
}

/// Whole-graph statistics, matching the columns of Fig. 12:
/// `|V(G)|`, `Σ|E(G_i)|`, `|∪ E(G_i)|`, `l(G)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of layers.
    pub num_layers: usize,
    /// Total edges summed across layers.
    pub total_edges: usize,
    /// Number of distinct edges in the union graph.
    pub union_edges: usize,
    /// Per-layer breakdown.
    pub layers: Vec<LayerStats>,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn compute(g: &MultiLayerGraph) -> Self {
        let n = g.num_vertices();
        let layers = g
            .layers()
            .iter()
            .enumerate()
            .map(|(i, layer)| {
                let active = (0..n as u32).filter(|&v| layer.degree(v) > 0).count();
                LayerStats {
                    layer: i,
                    name: g.layer_name(i).to_string(),
                    num_edges: layer.num_edges(),
                    active_vertices: active,
                    max_degree: layer.max_degree(),
                    avg_degree: if n == 0 {
                        0.0
                    } else {
                        2.0 * layer.num_edges() as f64 / n as f64
                    },
                }
            })
            .collect();
        GraphStats {
            num_vertices: n,
            num_layers: g.num_layers(),
            total_edges: g.total_edges(),
            union_edges: g.union_edge_count(),
            layers,
        }
    }

    /// Renders the Fig. 12-style one-line summary:
    /// `name |V| Σ|E_i| |∪E_i| l`.
    pub fn summary_row(&self, name: &str) -> String {
        format!(
            "{name}\t{}\t{}\t{}\t{}",
            self.num_vertices, self.total_edges, self.union_edges, self.num_layers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MultiLayerGraphBuilder;

    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(5, 2);
        b.add_edges(0, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        b.add_edges(1, &[(0, 1), (3, 4)]).unwrap();
        b.build()
    }

    #[test]
    fn whole_graph_counts() {
        let s = GraphStats::compute(&graph());
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_layers, 2);
        assert_eq!(s.total_edges, 5);
        // union edges: (0,1),(1,2),(0,2),(3,4) = 4
        assert_eq!(s.union_edges, 4);
    }

    #[test]
    fn per_layer_breakdown() {
        let s = GraphStats::compute(&graph());
        assert_eq!(s.layers.len(), 2);
        assert_eq!(s.layers[0].num_edges, 3);
        assert_eq!(s.layers[0].active_vertices, 3);
        assert_eq!(s.layers[0].max_degree, 2);
        assert!((s.layers[0].avg_degree - 6.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.layers[1].active_vertices, 4);
    }

    #[test]
    fn summary_row_format() {
        let s = GraphStats::compute(&graph());
        let row = s.summary_row("Toy");
        assert_eq!(row, "Toy\t5\t5\t4\t2");
    }
}
