//! Property suites for the million-vertex scale path:
//!
//! 1. [`CompressedVertexSet`] must be bit-identical to the flat
//!    [`VertexSet`] on every shared operation — across empty/full sets,
//!    partial trailing words, multi-container (4096-bit block) boundaries,
//!    and under every kernel this host can run.
//! 2. The CSR sorted-run machinery — `degree_within` via
//!    `BitKernel::sorted_and_count`, and the galloping/merge intersection
//!    behind `common_degree` — must agree with the scalar membership walk
//!    on randomized adjacencies.

use mlgraph::intersect::{galloping_count, merge_count, sorted_intersect_count};
use mlgraph::kernels::{available_kernels, kernel_for, KernelKind};
use mlgraph::{CompressedVertexSet, Csr, Vertex, VertexSet};
use proptest::prelude::*;

/// Strategy: universe capacities that straddle word boundaries (64) and
/// container-block boundaries (4096): exact, one past, one short, and far
/// between — so trailing partial words and multi-block directories are all
/// exercised.
fn capacity_strategy() -> impl Strategy<Value = usize> {
    prop::collection::vec(1usize..200, 1..=1).prop_map(|v| {
        let base = v[0];
        match base % 8 {
            0 => base.next_multiple_of(64),     // word boundary
            1 => base.next_multiple_of(64) + 1, // one bit into a new word
            2 => base.next_multiple_of(64) - 1, // partial trailing word
            3 => 4096,                          // exact block boundary
            4 => 4097,                          // one bit into block two
            5 => 4095,                          // partial trailing block
            6 => base * 64 + 4096,              // multi-block universe
            _ => base,
        }
    })
}

/// Builds matching (flat, compressed) pairs. Shapes 0/1 and 2/3 force the
/// empty and full extremes on either side.
fn build_pair(cap: usize, members: Vec<u32>, shape: u32) -> (VertexSet, CompressedVertexSet) {
    let folded: Vec<Vertex> = members.iter().map(|&v| v % cap.max(1) as Vertex).collect();
    match shape % 3 {
        0 => (VertexSet::new(cap), CompressedVertexSet::new(cap)),
        1 => (VertexSet::full(cap), CompressedVertexSet::full(cap)),
        _ => (
            VertexSet::from_iter(cap, folded.iter().copied()),
            CompressedVertexSet::from_iter(cap, folded),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Compressed sets mirror flat sets on every shared op, under every
    // available kernel.
    #[test]
    fn compressed_matches_flat_under_every_kernel(
        cap in capacity_strategy(),
        a in prop::collection::vec(0u32..1_000_000, 0..512),
        b in prop::collection::vec(0u32..1_000_000, 0..512),
        shape_a in 0u32..3,
        shape_b in 0u32..3,
    ) {
        let (fa, ca) = build_pair(cap, a, shape_a);
        let (fb, cb) = build_pair(cap, b, shape_b + 1);
        prop_assert_eq!(ca.len(), fa.len());
        prop_assert_eq!(ca.to_vec(), fa.to_vec());
        prop_assert_eq!(ca.is_empty(), fa.is_empty());
        for v in fa.iter().take(8) {
            prop_assert!(ca.contains(v));
        }
        let scalar = kernel_for(KernelKind::Scalar).expect("scalar always available");
        let expected_and = fa.intersection_len(&fb);
        let expected_vec = fa.intersection(&fb).to_vec();
        for k in available_kernels() {
            let kind = k.kind();
            prop_assert_eq!(
                ca.and_count_with(k, &cb), expected_and,
                "and_count {:?} cap={}", kind, cap
            );
            prop_assert_eq!(
                ca.and_count_words_with(k, fb.words()), expected_and,
                "and_count_words {:?} cap={}", kind, cap
            );
            let mut out = CompressedVertexSet::new(cap);
            out.assign_intersection_with(k, &ca, &cb);
            prop_assert_eq!(out.len(), expected_and, "assign len {:?} cap={}", kind, cap);
            prop_assert_eq!(&out.to_vec(), &expected_vec, "assign {:?} cap={}", kind, cap);
            // Canonical containers: kernels may not change representation.
            let mut out_scalar = CompressedVertexSet::new(cap);
            out_scalar.assign_intersection_with(scalar, &ca, &cb);
            prop_assert_eq!(&out, &out_scalar, "canonical form {:?} cap={}", kind, cap);
        }
        let mut walked = Vec::new();
        ca.for_each_in(fb.words(), |v| walked.push(v));
        prop_assert_eq!(walked, expected_vec);
    }

    // Mutation paths (insert/remove with promotion and demotion across the
    // sparse/dense container boundary) stay in lockstep with the flat set.
    #[test]
    fn compressed_mutation_stays_in_lockstep(
        cap in capacity_strategy(),
        members in prop::collection::vec(0u32..1_000_000, 0..512),
        removals in prop::collection::vec(0u32..1_000_000, 0..256),
    ) {
        let mut flat = VertexSet::new(cap);
        let mut comp = CompressedVertexSet::new(cap);
        for &m in &members {
            let v = m % cap.max(1) as Vertex;
            prop_assert_eq!(comp.insert(v), flat.insert(v));
        }
        for &m in &removals {
            let v = m % cap.max(1) as Vertex;
            prop_assert_eq!(comp.remove(v), flat.remove(v));
        }
        prop_assert_eq!(comp.len(), flat.len());
        prop_assert_eq!(comp.to_vec(), flat.to_vec());
        // Canonical form: the mutated set equals a freshly built one.
        prop_assert_eq!(&comp, &CompressedVertexSet::from_iter(cap, flat.iter()));
    }

    // CSR: the kernel-dispatched sorted-run degree equals the scalar
    // membership walk, and the galloping/merge intersections agree with a
    // definitional model, on randomized adjacencies.
    #[test]
    fn csr_sorted_run_kernels_match_scalar_walk(
        n_raw in 2usize..400,
        edges_raw in prop::collection::vec((0u32..1_000, 0u32..1_000), 0..800),
        members in prop::collection::vec(0u32..1_000, 0..200),
    ) {
        let n = n_raw;
        let edges: Vec<(Vertex, Vertex)> = edges_raw
            .into_iter()
            .map(|(u, v)| (u % n as Vertex, v % n as Vertex))
            .filter(|(u, v)| u != v)
            .collect();
        let csr = Csr::from_edges(n, &edges);
        let within = VertexSet::from_iter(n, members.into_iter().map(|v| v % n as Vertex));
        for v in 0..n as Vertex {
            // Definitional scalar membership walk.
            let expected = csr.neighbors(v).iter().filter(|&&u| within.contains(u)).count();
            prop_assert_eq!(csr.degree_within(v, &within), expected, "degree_within v={}", v);
            for k in available_kernels() {
                prop_assert_eq!(
                    k.sorted_and_count(csr.neighbors(v), within.words()),
                    expected,
                    "sorted_and_count {:?} v={}", k.kind(), v
                );
            }
        }
        // Galloping and merge intersections agree with each other and the
        // adaptive entry point on adjacency-run pairs (common_degree).
        for (u, v) in [(0, 1), (0, n as Vertex - 1), (1, n as Vertex / 2)] {
            let (a, b) = (csr.neighbors(u), csr.neighbors(v));
            let expected = a.iter().filter(|x| b.binary_search(x).is_ok()).count();
            prop_assert_eq!(merge_count(a, b), expected);
            prop_assert_eq!(galloping_count(a, b), expected);
            prop_assert_eq!(sorted_intersect_count(a, b), expected);
            prop_assert_eq!(csr.common_degree(u, v), expected);
        }
    }
}
