//! Property suite for the bit-kernel layer: every kernel this host can run
//! must be bit-identical to the scalar reference on randomized
//! [`VertexSet`]s — including partial trailing words, empty sets, and full
//! sets — across every dispatched operation.
//!
//! CI runs the whole workspace suite once with `DCCS_FORCE_KERNEL=scalar`
//! and once unforced (auto dispatch), so the selected kernel is also
//! exercised end to end through the peeling engines, not just here.

use mlgraph::kernels::{available_kernels, kernel, kernel_for, KernelKind};
use mlgraph::{Vertex, VertexSet};
use proptest::prelude::*;

/// Strategy: a universe capacity that lands on word boundaries, just past
/// them, and far between (capacity % 64 ∈ {0, 1, 63, …}).
fn capacity_strategy() -> impl Strategy<Value = usize> {
    prop::collection::vec(1usize..200, 1..=1).prop_map(|v| {
        let base = v[0];
        match base % 4 {
            0 => base.next_multiple_of(64),     // exact word boundary
            1 => base.next_multiple_of(64) + 1, // one bit into a new word
            2 => base.next_multiple_of(64) - 1, // partial trailing word
            _ => base,
        }
    })
}

fn build_sets(cap: usize, a: Vec<u32>, b: Vec<u32>, shape: u32) -> (VertexSet, VertexSet) {
    // Raw members are drawn over a fixed range and folded into the
    // universe here (the vendored proptest stub cannot chain strategies).
    let fold = |vs: Vec<u32>| vs.into_iter().map(|v| v % cap as Vertex);
    // Shapes 0/1 force the extremes on one side: empty and full sets must
    // behave, not just random ones.
    let a = match shape {
        0 => VertexSet::new(cap),
        1 => VertexSet::full(cap),
        _ => VertexSet::from_iter(cap, fold(a)),
    };
    let b = match shape {
        2 => VertexSet::new(cap),
        3 => VertexSet::full(cap),
        _ => VertexSet::from_iter(cap, fold(b)),
    };
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // All available kernels agree with scalar on every primitive, for
    // every universe shape.
    #[test]
    fn kernels_are_bit_identical_on_vertex_sets(
        cap in capacity_strategy(),
        a in prop::collection::vec(0u32..100_000, 0..128),
        b in prop::collection::vec(0u32..100_000, 0..128),
        shape in 0u32..9,
    ) {
        let scalar = kernel_for(KernelKind::Scalar).expect("scalar always available");
        let (sa, sb) = build_sets(cap, a, b, shape);
        for k in available_kernels() {
            let kind = k.kind();
            // assign ops
            let mut out_s = vec![0u64; sa.words().len()];
            let mut out_k = out_s.clone();
            let cs = scalar.and_assign_count(&mut out_s, sa.words(), sb.words());
            let ck = k.and_assign_count(&mut out_k, sa.words(), sb.words());
            prop_assert_eq!((cs, &out_s), (ck, &out_k), "and_assign {:?} cap={}", kind, cap);
            let cs = scalar.andnot_assign_count(&mut out_s, sa.words(), sb.words());
            let ck = k.andnot_assign_count(&mut out_k, sa.words(), sb.words());
            prop_assert_eq!((cs, &out_s), (ck, &out_k), "andnot_assign {:?} cap={}", kind, cap);
            // in-place ops
            let mut acc_s = sa.words().to_vec();
            let mut acc_k = sa.words().to_vec();
            prop_assert_eq!(
                scalar.and_inplace_count(&mut acc_s, sb.words()),
                k.and_inplace_count(&mut acc_k, sb.words())
            );
            prop_assert_eq!(&acc_s, &acc_k, "and_inplace {:?} cap={}", kind, cap);
            let mut acc_s = sa.words().to_vec();
            let mut acc_k = sa.words().to_vec();
            prop_assert_eq!(
                scalar.or_inplace_count(&mut acc_s, sb.words()),
                k.or_inplace_count(&mut acc_k, sb.words())
            );
            prop_assert_eq!(&acc_s, &acc_k, "or_inplace {:?} cap={}", kind, cap);
            let mut acc_s = sa.words().to_vec();
            let mut acc_k = sa.words().to_vec();
            prop_assert_eq!(
                scalar.andnot_inplace_count(&mut acc_s, sb.words()),
                k.andnot_inplace_count(&mut acc_k, sb.words())
            );
            prop_assert_eq!(&acc_s, &acc_k, "andnot_inplace {:?} cap={}", kind, cap);
            // pure count
            prop_assert_eq!(
                scalar.and_count(sa.words(), sb.words()),
                k.and_count(sa.words(), sb.words()),
                "and_count {:?} cap={}", kind, cap
            );
        }
    }

    // The dispatched `VertexSet` operations equal a definitional model —
    // whatever kernel this process selected (forced or auto).
    #[test]
    fn vertex_set_ops_match_definitional_model(
        cap in capacity_strategy(),
        a in prop::collection::vec(0u32..100_000, 0..128),
        b in prop::collection::vec(0u32..100_000, 0..128),
        shape in 0u32..9,
    ) {
        let _ = kernel(); // force selection up front
        let (sa, sb) = build_sets(cap, a, b, shape);
        let model_a: std::collections::BTreeSet<u32> = sa.iter().collect();
        let model_b: std::collections::BTreeSet<u32> = sb.iter().collect();
        let inter: Vec<u32> = model_a.intersection(&model_b).copied().collect();
        let uni: Vec<u32> = model_a.union(&model_b).copied().collect();
        let diff: Vec<u32> = model_a.difference(&model_b).copied().collect();
        prop_assert_eq!(sa.intersection(&sb).to_vec(), inter.clone());
        prop_assert_eq!(sa.union(&sb).to_vec(), uni);
        prop_assert_eq!(sa.difference(&sb).to_vec(), diff);
        prop_assert_eq!(sa.intersection_len(&sb), inter.len());
        prop_assert_eq!(sa.intersection_len_words(sb.words()), inter.len());
        let mut out = VertexSet::new(cap);
        out.assign_intersection(&sa, &sb);
        prop_assert_eq!(out.to_vec(), inter.clone());
        prop_assert_eq!(out.len(), inter.len());
    }
}
