//! Enumeration of cross-graph γ-quasi-cliques (the MiMAG stand-in).
//!
//! A *cross-graph γ-quasi-clique with support `s`* is a vertex set `Q` with
//! `|Q| ≥ min_size` that is a γ-quasi-clique on at least `s` layers.
//! Exhaustively enumerating them explores up to `2^{|V|}` subsets — the very
//! cost the paper's Section VI uses to motivate d-CCs — so, like MiMAG, this
//! miner is a bounded heuristic search rather than an exhaustive one:
//!
//! 1. **Universe restriction** — a member of a qualifying set must have
//!    within-set degree ≥ `⌈γ·(min_size − 1)⌉` on each of at least `s`
//!    layers, hence must belong to the corresponding d-core of at least `s`
//!    layers (the same support argument the DCCS preprocessing uses).
//! 2. **Greedy seed expansion** — every universe vertex seeds a candidate
//!    set that is grown one vertex at a time; each step adds the vertex that
//!    keeps the set a γ-quasi-clique on the largest number of layers, never
//!    letting the supporting-layer count drop below `s`. Growth stops when
//!    no vertex can be added, which yields a locally maximal quasi-clique
//!    per seed (this mirrors MiMAG's best-first cluster growing).
//! 3. **Budgets** — candidate evaluations are counted against
//!    `node_budget`, so every run is finite even on adversarial inputs.
//!
//! Duplicate and non-maximal results are dropped before the diversified
//! selection in [`crate::mimag`].

use crate::gamma::{required_degree, supporting_layers};
use mlgraph::{MultiLayerGraph, Vertex, VertexSet};

/// Configuration for the cross-graph quasi-clique enumeration.
#[derive(Clone, Debug)]
pub struct QcConfig {
    /// Density threshold γ ∈ [0, 1].
    pub gamma: f64,
    /// Minimum number of layers a result must be a γ-quasi-clique on.
    pub min_support: usize,
    /// Minimum result size (`d'` in the paper's comparison setup).
    pub min_size: usize,
    /// Maximum result size grown per seed.
    pub max_size: usize,
    /// Maximum number of candidate evaluations before the search stops.
    pub node_budget: usize,
    /// Maximum number of quasi-cliques recorded before the search stops.
    pub result_budget: usize,
}

impl Default for QcConfig {
    fn default() -> Self {
        QcConfig {
            gamma: 0.8,
            min_support: 2,
            min_size: 4,
            max_size: 64,
            node_budget: 5_000_000,
            result_budget: 20_000,
        }
    }
}

/// Counters describing the enumeration effort.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QcSearchStats {
    /// Candidate evaluations performed.
    pub nodes_visited: usize,
    /// Quasi-cliques recorded before maximality filtering.
    pub raw_results: usize,
    /// Whether a budget limit stopped the search early.
    pub truncated: bool,
}

/// Enumerates (locally maximal) cross-graph γ-quasi-cliques.
///
/// Returns the discovered vertex sets and the search statistics. The output
/// is deterministic for a given graph and configuration.
pub fn enumerate_cross_graph_quasi_cliques(
    g: &MultiLayerGraph,
    config: &QcConfig,
) -> (Vec<VertexSet>, QcSearchStats) {
    let n = g.num_vertices();
    let mut stats = QcSearchStats::default();
    if config.min_size < 2 || config.min_support == 0 || config.min_support > g.num_layers() {
        return (Vec::new(), stats);
    }

    // Step 1: support-based universe restriction.
    let d_needed = required_degree(config.gamma, config.min_size) as u32;
    let layer_cores: Vec<VertexSet> =
        (0..g.num_layers()).map(|i| coreness::d_core(g.layer(i), d_needed)).collect();
    let mut universe = VertexSet::new(n);
    for v in 0..n as Vertex {
        let support = layer_cores.iter().filter(|c| c.contains(v)).count();
        if support >= config.min_support {
            universe.insert(v);
        }
    }
    if universe.len() < config.min_size {
        return (Vec::new(), stats);
    }
    let universe_vec: Vec<Vertex> = universe.to_vec();

    // Step 2: greedy expansion from every seed.
    let mut results: Vec<VertexSet> = Vec::new();
    'seeds: for &seed in &universe_vec {
        let mut current = VertexSet::new(n);
        current.insert(seed);
        loop {
            if current.len() >= config.max_size {
                break;
            }
            let mut best: Option<(usize, usize, Vertex)> = None;
            for &v in &universe_vec {
                if current.contains(v) {
                    continue;
                }
                // Quick connectivity screen before the full support check.
                let touching = (0..g.num_layers())
                    .filter(|&i| g.layer(i).degree_within(v, &current) > 0)
                    .count();
                if touching < config.min_support {
                    continue;
                }
                stats.nodes_visited += 1;
                if stats.nodes_visited > config.node_budget {
                    stats.truncated = true;
                    break 'seeds;
                }
                current.insert(v);
                let support = supporting_layers(g, &current, config.gamma).len();
                let within_degree: usize =
                    (0..g.num_layers()).map(|i| g.layer(i).degree_within(v, &current)).sum();
                current.remove(v);
                if support < config.min_support {
                    continue;
                }
                let candidate = (support, within_degree, v);
                let better = match best {
                    None => true,
                    Some((bs, bd, bv)) => {
                        (support, within_degree, std::cmp::Reverse(v))
                            > (bs, bd, std::cmp::Reverse(bv))
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }
            match best {
                Some((_, _, v)) => {
                    current.insert(v);
                }
                None => break,
            }
        }
        if current.len() >= config.min_size
            && supporting_layers(g, &current, config.gamma).len() >= config.min_support
        {
            results.push(current);
            if results.len() >= config.result_budget {
                stats.truncated = true;
                break 'seeds;
            }
        }
    }

    stats.raw_results = results.len();
    let maximal = retain_maximal(results);
    (maximal, stats)
}

/// Removes duplicates and every set that is a subset of another recorded set.
fn retain_maximal(mut sets: Vec<VertexSet>) -> Vec<VertexSet> {
    sets.sort_by_key(|s| std::cmp::Reverse(s.len()));
    let mut kept: Vec<VertexSet> = Vec::new();
    for s in sets {
        if !kept.iter().any(|k| s.is_subset_of(k)) {
            kept.push(s);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    /// Clique A = {0,1,2,3} on layers 0,1; clique B = {4,5,6,7,8} on layers
    /// 1,2; a sparse path on the rest.
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(12, 3);
        clique(&mut b, 0, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[4, 5, 6, 7, 8]);
        clique(&mut b, 2, &[4, 5, 6, 7, 8]);
        for layer in 0..3 {
            for v in 9..11u32 {
                b.add_edge(layer, v, v + 1).unwrap();
            }
        }
        b.build()
    }

    fn config(min_size: usize) -> QcConfig {
        QcConfig { gamma: 1.0, min_support: 2, min_size, ..QcConfig::default() }
    }

    #[test]
    fn finds_planted_cliques() {
        let g = graph();
        let (results, stats) = enumerate_cross_graph_quasi_cliques(&g, &config(4));
        assert!(!stats.truncated);
        let as_vecs: Vec<Vec<u32>> = results.iter().map(|s| s.to_vec()).collect();
        assert!(as_vecs.contains(&vec![0, 1, 2, 3]));
        assert!(as_vecs.contains(&vec![4, 5, 6, 7, 8]));
        // Only the two maximal cliques survive maximality filtering.
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn min_size_filters_small_cliques() {
        let g = graph();
        let (results, _) = enumerate_cross_graph_quasi_cliques(&g, &config(5));
        let as_vecs: Vec<Vec<u32>> = results.iter().map(|s| s.to_vec()).collect();
        assert_eq!(as_vecs, vec![vec![4, 5, 6, 7, 8]]);
    }

    #[test]
    fn support_threshold_is_respected() {
        let g = graph();
        let mut cfg = config(4);
        cfg.min_support = 3;
        let (results, _) = enumerate_cross_graph_quasi_cliques(&g, &cfg);
        assert!(results.is_empty());
    }

    #[test]
    fn gamma_below_one_admits_denser_supersets() {
        // 5 vertices, complete graph minus one edge, on two layers.
        let mut b = MultiLayerGraphBuilder::new(5, 2);
        for layer in 0..2 {
            for u in 0..5u32 {
                for v in (u + 1)..5 {
                    if (u, v) != (3, 4) {
                        b.add_edge(layer, u, v).unwrap();
                    }
                }
            }
        }
        let g = b.build();
        let strict = QcConfig { gamma: 1.0, min_support: 2, min_size: 5, ..QcConfig::default() };
        let (none, _) = enumerate_cross_graph_quasi_cliques(&g, &strict);
        assert!(none.is_empty());
        let relaxed = QcConfig { gamma: 0.75, min_support: 2, min_size: 5, ..QcConfig::default() };
        let (some, _) = enumerate_cross_graph_quasi_cliques(&g, &relaxed);
        assert_eq!(some.len(), 1);
        assert_eq!(some[0].len(), 5);
    }

    #[test]
    fn budget_truncation_is_reported() {
        let g = graph();
        let mut cfg = config(4);
        cfg.node_budget = 3;
        let (_, stats) = enumerate_cross_graph_quasi_cliques(&g, &cfg);
        assert!(stats.truncated);
    }

    #[test]
    fn every_result_is_a_quasi_clique_on_enough_layers() {
        let g = graph();
        let cfg = QcConfig { gamma: 0.8, min_support: 2, min_size: 3, ..QcConfig::default() };
        let (results, _) = enumerate_cross_graph_quasi_cliques(&g, &cfg);
        assert!(!results.is_empty());
        for q in &results {
            assert!(q.len() >= 3);
            assert!(supporting_layers(&g, q, 0.8).len() >= 2);
        }
    }

    #[test]
    fn results_are_locally_maximal() {
        let g = graph();
        let (results, _) = enumerate_cross_graph_quasi_cliques(&g, &config(4));
        for q in &results {
            // No single vertex can be added while keeping the set a clique on
            // two layers.
            for v in 0..g.num_vertices() as u32 {
                if q.contains(v) {
                    continue;
                }
                let mut bigger = q.clone();
                bigger.insert(v);
                assert!(supporting_layers(&g, &bigger, 1.0).len() < 2);
            }
        }
    }

    #[test]
    fn degenerate_configs_return_empty() {
        let g = graph();
        let mut cfg = config(1);
        assert!(enumerate_cross_graph_quasi_cliques(&g, &cfg).0.is_empty());
        cfg = config(4);
        cfg.min_support = 0;
        assert!(enumerate_cross_graph_quasi_cliques(&g, &cfg).0.is_empty());
        cfg = config(4);
        cfg.min_support = 99;
        assert!(enumerate_cross_graph_quasi_cliques(&g, &cfg).0.is_empty());
    }

    #[test]
    fn deterministic_for_a_given_seed_graph() {
        let g = graph();
        let (a, _) = enumerate_cross_graph_quasi_cliques(&g, &config(4));
        let (b, _) = enumerate_cross_graph_quasi_cliques(&g, &config(4));
        let av: Vec<Vec<u32>> = a.iter().map(|s| s.to_vec()).collect();
        let bv: Vec<Vec<u32>> = b.iter().map(|s| s.to_vec()).collect();
        assert_eq!(av, bv);
    }
}
