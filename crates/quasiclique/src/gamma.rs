//! The γ-quasi-clique predicate.
//!
//! A vertex set `Q` is a γ-quasi-clique on a graph `G` iff every vertex of
//! `Q` is adjacent to at least `γ·(|Q| − 1)` other vertices of `Q`
//! (Section I of the paper, following Pei et al.).

use mlgraph::{Csr, MultiLayerGraph, VertexSet};

/// The minimum within-set degree a member of a γ-quasi-clique of size
/// `size` must have: `⌈γ·(size − 1)⌉`.
pub fn required_degree(gamma: f64, size: usize) -> usize {
    if size <= 1 {
        return 0;
    }
    (gamma * (size as f64 - 1.0)).ceil() as usize
}

/// Whether `set` is a γ-quasi-clique on the single layer `g`.
///
/// The empty set and singletons are quasi-cliques by convention.
pub fn is_gamma_quasi_clique(g: &Csr, set: &VertexSet, gamma: f64) -> bool {
    let size = set.len();
    if size <= 1 {
        return true;
    }
    let need = gamma * (size as f64 - 1.0);
    set.iter().all(|v| g.degree_within(v, set) as f64 + 1e-9 >= need)
}

/// The layers of `g` on which `set` is a γ-quasi-clique.
pub fn supporting_layers(g: &MultiLayerGraph, set: &VertexSet, gamma: f64) -> Vec<usize> {
    (0..g.num_layers()).filter(|&i| is_gamma_quasi_clique(g.layer(i), set, gamma)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgraph::MultiLayerGraphBuilder;

    fn clique_layer(n: usize) -> Csr {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn required_degree_rounds_up() {
        assert_eq!(required_degree(0.8, 5), 4); // 0.8·4 = 3.2 → 4
        assert_eq!(required_degree(0.5, 5), 2);
        assert_eq!(required_degree(1.0, 4), 3);
        assert_eq!(required_degree(0.8, 1), 0);
        assert_eq!(required_degree(0.8, 0), 0);
    }

    #[test]
    fn clique_is_quasi_clique_for_any_gamma() {
        let g = clique_layer(5);
        let all = VertexSet::full(5);
        for gamma in [0.2, 0.5, 0.8, 1.0] {
            assert!(is_gamma_quasi_clique(&g, &all, gamma));
        }
    }

    #[test]
    fn missing_edge_breaks_gamma_one() {
        // 4-clique minus one edge.
        let g = Csr::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
        let all = VertexSet::full(4);
        assert!(!is_gamma_quasi_clique(&g, &all, 1.0));
        // Each vertex still has ≥ 2 = 0.66·3 neighbors.
        assert!(is_gamma_quasi_clique(&g, &all, 0.66));
    }

    #[test]
    fn sparse_set_fails_even_small_gamma() {
        let g = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let all = VertexSet::full(4);
        assert!(!is_gamma_quasi_clique(&g, &all, 0.5));
        // Pairs are fine.
        assert!(is_gamma_quasi_clique(&g, &VertexSet::from_iter(4, [0, 1]), 1.0));
    }

    #[test]
    fn degenerate_sets_are_quasi_cliques() {
        let g = clique_layer(3);
        assert!(is_gamma_quasi_clique(&g, &VertexSet::new(3), 1.0));
        assert!(is_gamma_quasi_clique(&g, &VertexSet::from_iter(3, [2]), 1.0));
    }

    #[test]
    fn supporting_layers_counts_layers() {
        let mut b = MultiLayerGraphBuilder::new(4, 3);
        // Layer 0: 4-clique; layer 1: triangle {0,1,2} (vertex 3 isolated);
        // layer 2: empty.
        for (u, v) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(0, u, v).unwrap();
        }
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            b.add_edge(1, u, v).unwrap();
        }
        let g = b.build();
        let triangle = VertexSet::from_iter(4, [0, 1, 2]);
        assert_eq!(supporting_layers(&g, &triangle, 1.0), vec![0, 1]);
        let quad = VertexSet::full(4);
        assert_eq!(supporting_layers(&g, &quad, 1.0), vec![0]);
        assert_eq!(supporting_layers(&g, &quad, 0.0), vec![0, 1, 2]);
    }
}
