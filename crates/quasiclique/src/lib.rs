//! # quasiclique — cross-graph γ-quasi-clique mining baseline
//!
//! The paper compares its DCCS algorithms against `MiMAG` (Boden et al.,
//! KDD 2012), a miner of diversified cross-graph γ-quasi-cliques on
//! multi-layer graphs. The original MiMAG implementation is not available,
//! so this crate provides a functionally equivalent baseline:
//!
//! * [`gamma`] — the γ-quasi-clique predicate on a single layer and the
//!   supporting-layer count on a multi-layer graph;
//! * [`cross_graph`] — a bounded, seed-expansion enumerator of vertex sets
//!   of size ≥ `min_size` that are γ-quasi-cliques on at least `s` layers
//!   (edge-label distances are disabled, exactly as in the paper's
//!   experimental setup);
//! * [`mimag`] — diversified top-k selection over the enumerated
//!   quasi-cliques (greedy max cover), exposing the same result shape as the
//!   DCCS algorithms so the Fig. 29–32 comparisons can be computed.
//!
//! The enumerator grows quasi-cliques greedily from every seed vertex under
//! a candidate-evaluation budget; exhaustive quasi-clique search over
//! `2^{|V|}` subsets is intractable, which is precisely the paper's argument
//! for d-CCs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cross_graph;
pub mod gamma;
pub mod mimag;

pub use cross_graph::{enumerate_cross_graph_quasi_cliques, QcConfig, QcSearchStats};
pub use gamma::{is_gamma_quasi_clique, required_degree, supporting_layers};
pub use mimag::{mimag_baseline, MimagResult};
