//! `MiMAG`-style diversified quasi-clique mining.
//!
//! Boden et al.'s MiMAG reports a *diversified* set of coherent quasi-cliques
//! rather than the full (heavily overlapping) result list. This module
//! reproduces that behaviour on top of the
//! [`cross_graph`](crate::cross_graph) enumerator: the discovered maximal
//! cross-graph γ-quasi-cliques are ranked by greedy max-cover, matching the
//! diversification objective the paper compares against in Figs. 29–32.

use crate::cross_graph::{enumerate_cross_graph_quasi_cliques, QcConfig, QcSearchStats};
use mlgraph::{MultiLayerGraph, VertexSet};
use std::time::{Duration, Instant};

/// Output of the MiMAG-style baseline.
#[derive(Clone, Debug)]
pub struct MimagResult {
    /// The selected diversified quasi-cliques.
    pub quasi_cliques: Vec<VertexSet>,
    /// The union of the selected quasi-cliques (`Cov(R_Q)`).
    pub cover: VertexSet,
    /// Enumeration statistics.
    pub stats: QcSearchStats,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl MimagResult {
    /// `|Cov(R_Q)|`.
    pub fn cover_size(&self) -> usize {
        self.cover.len()
    }

    /// Number of reported quasi-cliques.
    pub fn num_results(&self) -> usize {
        self.quasi_cliques.len()
    }
}

/// Runs the baseline: enumerate cross-graph γ-quasi-cliques, then select at
/// most `k` of them greedily by marginal cover gain (quasi-cliques that add
/// no new vertex are skipped, mirroring MiMAG's redundancy removal).
///
/// Pass `k = usize::MAX` to keep every maximal quasi-clique.
pub fn mimag_baseline(g: &MultiLayerGraph, config: &QcConfig, k: usize) -> MimagResult {
    let start = Instant::now();
    let (mut found, stats) = enumerate_cross_graph_quasi_cliques(g, config);
    let n = g.num_vertices();
    let mut cover = VertexSet::new(n);
    let mut selected = Vec::new();
    while selected.len() < k && !found.is_empty() {
        let (best_idx, best_gain) = found
            .iter()
            .enumerate()
            .map(|(idx, q)| (idx, q.iter().filter(|&v| !cover.contains(v)).count()))
            .max_by_key(|&(idx, gain)| (gain, std::cmp::Reverse(idx)))
            .expect("non-empty candidate list");
        if best_gain == 0 {
            break;
        }
        let q = found.swap_remove(best_idx);
        cover.union_with(&q);
        selected.push(q);
    }
    MimagResult { quasi_cliques: selected, cover, stats, elapsed: start.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    /// Three planted cliques with different supports; clique C overlaps B.
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(16, 3);
        clique(&mut b, 0, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[4, 5, 6, 7, 8]);
        clique(&mut b, 2, &[4, 5, 6, 7, 8]);
        clique(&mut b, 0, &[7, 8, 9, 10]);
        clique(&mut b, 2, &[7, 8, 9, 10]);
        b.build()
    }

    fn config() -> QcConfig {
        QcConfig { gamma: 1.0, min_support: 2, min_size: 4, ..QcConfig::default() }
    }

    #[test]
    fn selects_diversified_cliques() {
        let g = graph();
        let result = mimag_baseline(&g, &config(), 10);
        assert_eq!(result.num_results(), 3);
        assert_eq!(result.cover_size(), 11);
    }

    #[test]
    fn k_limits_the_selection() {
        let g = graph();
        let result = mimag_baseline(&g, &config(), 1);
        assert_eq!(result.num_results(), 1);
        // The largest clique (5 vertices) is selected first.
        assert_eq!(result.cover_size(), 5);
    }

    #[test]
    fn redundant_quasi_cliques_are_skipped() {
        // Two identical layers: the only maximal quasi-clique is the clique
        // itself, so asking for k = 5 still returns one result.
        let mut b = MultiLayerGraphBuilder::new(6, 2);
        clique(&mut b, 0, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[0, 1, 2, 3]);
        let g = b.build();
        let result = mimag_baseline(&g, &config(), 5);
        assert_eq!(result.num_results(), 1);
        assert_eq!(result.cover_size(), 4);
    }

    #[test]
    fn empty_graph_gives_empty_result() {
        let g =
            mlgraph::MultiLayerGraph::from_edge_lists(5, &[vec![(0, 1)], vec![(1, 2)]]).unwrap();
        let result = mimag_baseline(&g, &config(), 3);
        assert_eq!(result.num_results(), 0);
        assert_eq!(result.cover_size(), 0);
    }

    #[test]
    fn deterministic_output() {
        let g = graph();
        let a = mimag_baseline(&g, &config(), 10);
        let b = mimag_baseline(&g, &config(), 10);
        assert_eq!(a.cover.to_vec(), b.cover.to_vec());
        assert_eq!(a.num_results(), b.num_results());
    }
}
