//! Side-by-side comparison of GD-DCCS, BU-DCCS and TD-DCCS on one synthetic
//! dataset, for a small and a large support threshold — a miniature version
//! of the paper's Figs. 14–17, driven through one [`DccsSession`]: the
//! session's layer-core memo and dense-index cache carry across every
//! query, and each comparison runs as a single batch.
//!
//! ```bash
//! cargo run --release --example algorithm_comparison
//! ```

use datasets::{generate, DatasetId, Scale};
use dccs::{Algorithm, DccsParams, DccsSession, QuerySpec};

fn main() {
    let dataset = generate(DatasetId::German, Scale::Small);
    let graph = &dataset.graph;
    let l = graph.num_layers();
    println!("dataset: German analogue with {} vertices, {} layers", graph.num_vertices(), l);

    let d = 4;
    let k = 10;
    let mut session = DccsSession::new(graph);

    println!("\n-- small support threshold (s = 3): BU-DCCS is the recommended algorithm --");
    println!("{:<24} {:>10} {:>8} {:>12}", "algorithm", "time (s)", "cover", "candidates");
    let params = DccsParams::new(d, 3, k);
    let batch = session
        .run_batch(&[
            QuerySpec::new(params).with_algorithm(Algorithm::Greedy),
            QuerySpec::new(params).with_algorithm(Algorithm::BottomUp),
        ])
        .unwrap();
    // No limits are set, so every per-spec slot of the batch succeeds.
    let gd = batch[0].as_ref().unwrap();
    let bu = batch[1].as_ref().unwrap();
    // The same greedy query again, spread over 4 executor workers — the
    // result is bit-identical; only the wall-clock changes.
    let par = session.query(params).algorithm(Algorithm::Greedy).threads(4).run().unwrap();
    for (name, time, cover, cands) in [
        ("GD-DCCS", gd.elapsed.as_secs_f64(), gd.cover_size(), gd.stats.candidates_generated),
        (
            "GD-DCCS (4 threads)",
            par.elapsed.as_secs_f64(),
            par.cover_size(),
            par.stats.candidates_generated,
        ),
        ("BU-DCCS", bu.elapsed.as_secs_f64(), bu.cover_size(), bu.stats.candidates_generated),
    ] {
        println!("{name:<24} {time:>10.4} {cover:>8} {cands:>12}");
    }
    println!(
        "search-space reduction of BU-DCCS vs GD-DCCS: {:.1}%",
        100.0
            * (1.0
                - bu.stats.candidates_generated as f64
                    / gd.stats.candidates_generated.max(1) as f64)
    );

    println!(
        "\n-- large support threshold (s = l - 2 = {}): TD-DCCS is the recommended algorithm --",
        l - 2
    );
    println!("{:<24} {:>10} {:>8} {:>12}", "algorithm", "time (s)", "cover", "candidates");
    let large = DccsParams::new(d, l - 2, k);
    let batch = session
        .run_batch(&[
            QuerySpec::new(large).with_algorithm(Algorithm::Greedy),
            QuerySpec::new(large).with_algorithm(Algorithm::BottomUp),
            QuerySpec::new(large).with_algorithm(Algorithm::TopDown),
        ])
        .unwrap();
    for r in &batch {
        let r = r.as_ref().unwrap();
        println!(
            "{:<24} {:>10.4} {:>8} {:>12}",
            r.stats.algorithm.map_or("?", Algorithm::name),
            r.elapsed.as_secs_f64(),
            r.cover_size(),
            r.stats.candidates_generated
        );
    }
    println!(
        "auto would pick: {} (small s) / {} (large s)",
        Algorithm::Auto.resolve(graph, &params).name(),
        Algorithm::Auto.resolve(graph, &large).name()
    );

    println!(
        "\nAll three algorithms report covers of similar size (the greedy algorithm is \
         (1 - 1/e)-approximate, the search algorithms are 1/4-approximate), but the \
         search algorithms examine far fewer candidate d-CCs."
    );
}
