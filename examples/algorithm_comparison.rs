//! Side-by-side comparison of GD-DCCS, BU-DCCS and TD-DCCS on one synthetic
//! dataset, for a small and a large support threshold — a miniature version
//! of the paper's Figs. 14–17.
//!
//! ```bash
//! cargo run --release --example algorithm_comparison
//! ```

use datasets::{generate, DatasetId, Scale};
use dccs::{bottom_up_dccs, greedy_dccs, parallel_greedy_dccs, top_down_dccs, DccsParams};

fn main() {
    let dataset = generate(DatasetId::German, Scale::Small);
    let graph = &dataset.graph;
    let l = graph.num_layers();
    println!("dataset: German analogue with {} vertices, {} layers", graph.num_vertices(), l);

    let d = 4;
    let k = 10;

    println!("\n-- small support threshold (s = 3): BU-DCCS is the recommended algorithm --");
    println!("{:<24} {:>10} {:>8} {:>12}", "algorithm", "time (s)", "cover", "candidates");
    let params = DccsParams::new(d, 3, k);
    let gd = greedy_dccs(graph, &params);
    let bu = bottom_up_dccs(graph, &params);
    let par = parallel_greedy_dccs(graph, &params, 4);
    for (name, time, cover, cands) in [
        ("GD-DCCS", gd.elapsed.as_secs_f64(), gd.cover_size(), gd.stats.candidates_generated),
        (
            "GD-DCCS (4 threads)",
            par.elapsed.as_secs_f64(),
            par.cover_size(),
            par.stats.candidates_generated,
        ),
        ("BU-DCCS", bu.elapsed.as_secs_f64(), bu.cover_size(), bu.stats.candidates_generated),
    ] {
        println!("{name:<24} {time:>10.4} {cover:>8} {cands:>12}");
    }
    println!(
        "search-space reduction of BU-DCCS vs GD-DCCS: {:.1}%",
        100.0
            * (1.0
                - bu.stats.candidates_generated as f64
                    / gd.stats.candidates_generated.max(1) as f64)
    );

    println!(
        "\n-- large support threshold (s = l - 2 = {}): TD-DCCS is the recommended algorithm --",
        l - 2
    );
    println!("{:<24} {:>10} {:>8} {:>12}", "algorithm", "time (s)", "cover", "candidates");
    let params = DccsParams::new(d, l - 2, k);
    let gd = greedy_dccs(graph, &params);
    let bu = bottom_up_dccs(graph, &params);
    let td = top_down_dccs(graph, &params);
    for (name, r) in [("GD-DCCS", &gd), ("BU-DCCS", &bu), ("TD-DCCS", &td)] {
        println!(
            "{name:<24} {:>10.4} {:>8} {:>12}",
            r.elapsed.as_secs_f64(),
            r.cover_size(),
            r.stats.candidates_generated
        );
    }

    println!(
        "\nAll three algorithms report covers of similar size (the greedy algorithm is \
         (1 - 1/e)-approximate, the search algorithms are 1/4-approximate), but the \
         search algorithms examine far fewer candidate d-CCs."
    );
}
