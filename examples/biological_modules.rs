//! Application 1 of the paper: biological module discovery.
//!
//! A synthetic protein–protein interaction network is generated with eight
//! "detection method" layers and a set of planted protein complexes. The
//! example runs BU-DCCS, compares the reported coherent cores with the
//! planted complexes (the Fig. 32 evaluation), and contrasts the result with
//! the quasi-clique baseline.
//!
//! ```bash
//! cargo run --release --example biological_modules
//! ```

use datasets::{generate, DatasetId, Scale};
use dccs::{complexes_found, Algorithm, CoverSimilarity, DccsParams, DccsSession};
use mlgraph::VertexSet;
use quasiclique::{mimag_baseline, QcConfig};

fn main() {
    let dataset = generate(DatasetId::Ppi, Scale::Full);
    let graph = &dataset.graph;
    let truth = &dataset.ground_truth;
    println!(
        "PPI analogue: {} proteins, {} detection-method layers, {} planted complexes",
        graph.num_vertices(),
        graph.num_layers(),
        truth.len()
    );

    let s = graph.num_layers() / 2;
    let k = 10;
    // One session serves the whole d-sweep: scratch buffers and the dense
    // cache carry across queries, and the query API cannot panic on a bad
    // parameter combination.
    let mut session = DccsSession::new(graph);
    for d in [2u32, 3, 4] {
        let params = DccsParams::new(d, s, k);
        let result = session
            .query(params)
            .algorithm(Algorithm::BottomUp)
            .run()
            .expect("valid query for the PPI analogue");
        let dense: Vec<VertexSet> = result.cores.iter().map(|c| c.vertices.clone()).collect();
        let found = complexes_found(&truth.modules, &dense);

        let qc = mimag_baseline(
            graph,
            &QcConfig {
                gamma: 0.8,
                min_support: s,
                min_size: (d + 1) as usize,
                ..QcConfig::default()
            },
            k,
        );
        let found_qc = complexes_found(&truth.modules, &qc.quasi_cliques);
        let similarity = CoverSimilarity::compute(&qc.cover, &result.cover);

        println!("\nd = {d} (s = {s}, k = {k})");
        println!(
            "  BU-DCCS : {:>4} vertices covered, {:>5.1}% of planted complexes found, {:.4}s",
            result.cover_size(),
            100.0 * found,
            result.elapsed.as_secs_f64()
        );
        println!(
            "  MiMAG   : {:>4} vertices covered, {:>5.1}% of planted complexes found, {:.4}s",
            qc.cover_size(),
            100.0 * found_qc,
            qc.elapsed.as_secs_f64()
        );
        println!(
            "  overlap : precision {:.3}, recall {:.3}, F1 {:.3}",
            similarity.precision, similarity.recall, similarity.f1
        );
    }

    println!(
        "\nAs in the paper, the coherent-core approach reports larger dense subgraphs, \
         recovers more of the planted complexes, and runs orders of magnitude faster \
         than quasi-clique mining."
    );
}
