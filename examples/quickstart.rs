//! Quickstart: build a small multi-layer graph by hand, compute d-coherent
//! cores, and run the three DCCS algorithms.
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! The graph reproduces the spirit of the paper's Fig. 1: a group of vertices
//! that is densely connected on every layer, a group that is dense on only
//! some layers, and a sparsely connected fringe.

use coreness::{d_coherent_core_full, d_core};
use dccs::{Algorithm, DccsParams, DccsSession};
use mlgraph::MultiLayerGraphBuilder;

fn add_clique(b: &mut MultiLayerGraphBuilder, layer: usize, members: &[u32]) {
    for i in 0..members.len() {
        for j in (i + 1)..members.len() {
            b.add_edge(layer, members[i], members[j]).unwrap();
        }
    }
}

fn main() {
    // 14 vertices, 4 layers.
    //  * vertices 0-8  : dense on all four layers (the "true" coherent core)
    //  * vertices 9-12 : dense on layers 0 and 1 only
    //  * vertex 13     : sparsely attached everywhere
    let mut builder = MultiLayerGraphBuilder::new(14, 4);
    for layer in 0..4 {
        add_clique(&mut builder, layer, &[0, 1, 2, 3, 4]);
        add_clique(&mut builder, layer, &[4, 5, 6, 7, 8]);
        builder.add_edge(layer, 0, 8).unwrap();
        builder.add_edge(layer, 1, 7).unwrap();
        builder.add_edge(layer, 2, 6).unwrap();
        builder.add_edge(layer, 13, layer as u32).unwrap();
    }
    for layer in 0..2 {
        add_clique(&mut builder, layer, &[9, 10, 11, 12]);
    }
    let graph = builder.build();

    println!(
        "graph: {} vertices, {} layers, {} edges total",
        graph.num_vertices(),
        graph.num_layers(),
        graph.total_edges()
    );

    // Per-layer d-cores and a multi-layer d-CC.
    let d = 3;
    for layer in 0..graph.num_layers() {
        let core = d_core(graph.layer(layer), d);
        println!("{d}-core of layer {layer}: {:?}", core.to_vec());
    }
    let cc = d_coherent_core_full(&graph, &[0, 1, 2, 3], d);
    println!("{d}-CC w.r.t. all four layers: {:?}", cc.to_vec());

    // The DCCS problem: find k = 2 diversified 3-CCs on s = 2 layers.
    // All queries go through one session, which owns the reusable engine
    // state and returns `Result` instead of panicking on bad parameters.
    let mut session = DccsSession::new(&graph);
    let params = DccsParams::new(3, 2, 2);
    let greedy = session.query(params).algorithm(Algorithm::Greedy).run().unwrap();
    let bottom_up = session.query(params).algorithm(Algorithm::BottomUp).run().unwrap();
    let top_down = session.query(params).algorithm(Algorithm::TopDown).run().unwrap();

    println!("\nDCCS with d={}, s={}, k={}:", params.d, params.s, params.k);
    for (name, result) in [("GD-DCCS", &greedy), ("BU-DCCS", &bottom_up), ("TD-DCCS", &top_down)] {
        println!(
            "  {name}: cover {} vertices in {:.4}s ({} candidate d-CCs examined)",
            result.cover_size(),
            result.elapsed.as_secs_f64(),
            result.stats.candidates_generated,
        );
        for core in &result.cores {
            println!("     layers {:?} -> {:?}", core.layers, core.vertex_vec());
        }
    }

    // `Algorithm::Auto` (the default) picks the right search per query and
    // records the choice in the result's statistics.
    let auto = session.query(params).run().unwrap();
    println!(
        "\nauto selection ran {} (cover {} vertices)",
        auto.stats.algorithm.map_or("?", Algorithm::name),
        auto.cover_size()
    );
}
