//! Application 2 of the paper: story identification in social media.
//!
//! Each layer is a snapshot graph of entity co-occurrence inside a time
//! window; a *story* is a group of entities that stays densely associated
//! across several consecutive snapshots. The example generates a temporal
//! analogue (the Wiki-style dataset), runs the DCCS algorithms, and reports
//! how well the reported coherent cores recover the planted stories.
//!
//! ```bash
//! cargo run --release --example story_identification
//! ```

use datasets::{generate, DatasetId, Scale};
use dccs::{bottom_up_dccs, top_down_dccs, DccsParams};
use mlgraph::VertexSet;

fn main() {
    let dataset = generate(DatasetId::Wiki, Scale::Small);
    let graph = &dataset.graph;
    let stories = &dataset.ground_truth;
    println!(
        "snapshot graph: {} entities, {} time windows, {} planted stories",
        graph.num_vertices(),
        graph.num_layers(),
        stories.len()
    );

    // A story must recur on at least `s` snapshots with density d.
    let d = 4;
    let k = 10;

    // Small support: stories that appear in a handful of windows (BU-DCCS).
    let small_s = 3;
    let bu = bottom_up_dccs(graph, &DccsParams::new(d, small_s, k));
    report("BU-DCCS", small_s, graph.num_vertices(), &bu, stories);

    // Large support: long-running stories (TD-DCCS is the right tool here).
    let large_s = graph.num_layers() - 2;
    let td = top_down_dccs(graph, &DccsParams::new(d, large_s, k));
    report("TD-DCCS", large_s, graph.num_vertices(), &td, stories);
}

fn report(
    name: &str,
    s: usize,
    num_vertices: usize,
    result: &dccs::DccsResult,
    stories: &datasets::GroundTruth,
) {
    println!(
        "\n{name} with s = {s}: {} entities covered in {:.3}s",
        result.cover_size(),
        result.elapsed.as_secs_f64()
    );
    for (i, core) in result.cores.iter().enumerate().take(5) {
        println!(
            "  story candidate {:>2}: {} entities recurring on windows {:?}",
            i + 1,
            core.len(),
            core.layers
        );
    }
    // How many planted stories are recovered (entirely contained in a core)?
    let dense: Vec<VertexSet> = result.cores.iter().map(|c| c.vertices.clone()).collect();
    let recovered = stories.found_in(&dense).len();
    println!("  planted stories fully recovered: {recovered}/{}", stories.len());
    let story_cover = stories.cover(num_vertices);
    let overlap = story_cover.intersection_len(&result.cover);
    println!(
        "  {} of the {} story entities appear in the reported cover",
        overlap,
        story_cover.len()
    );
}
