//! Application 2 of the paper: story identification in social media.
//!
//! Each layer is a snapshot graph of entity co-occurrence inside a time
//! window; a *story* is a group of entities that stays densely associated
//! across several consecutive snapshots. The example generates a temporal
//! analogue (the Wiki-style dataset), runs the DCCS algorithms, and reports
//! how well the reported coherent cores recover the planted stories.
//!
//! ```bash
//! cargo run --release --example story_identification
//! ```

use datasets::{generate, DatasetId, Scale};
use dccs::{DccsParams, DccsSession};
use mlgraph::VertexSet;

fn main() {
    let dataset = generate(DatasetId::Wiki, Scale::Small);
    let graph = &dataset.graph;
    let stories = &dataset.ground_truth;
    println!(
        "snapshot graph: {} entities, {} time windows, {} planted stories",
        graph.num_vertices(),
        graph.num_layers(),
        stories.len()
    );

    // A story must recur on at least `s` snapshots with density d.
    let d = 4;
    let k = 10;

    // One session, two regimes; `Algorithm::Auto` (the default) picks
    // BU-DCCS for the small support threshold and TD-DCCS for the large
    // one — the choice is recorded in the result's statistics.
    let mut session = DccsSession::new(graph);

    // Small support: stories that appear in a handful of windows.
    let small_s = 3;
    let bu = session.query(DccsParams::new(d, small_s, k)).run().unwrap();
    report(small_s, graph.num_vertices(), &bu, stories);

    // Large support: long-running stories.
    let large_s = graph.num_layers() - 2;
    let td = session.query(DccsParams::new(d, large_s, k)).run().unwrap();
    report(large_s, graph.num_vertices(), &td, stories);
}

fn report(
    s: usize,
    num_vertices: usize,
    result: &dccs::DccsResult,
    stories: &datasets::GroundTruth,
) {
    let name = result.stats.algorithm.map_or("?", dccs::Algorithm::name);
    println!(
        "\n{name} (auto-selected) with s = {s}: {} entities covered in {:.3}s",
        result.cover_size(),
        result.elapsed.as_secs_f64()
    );
    for (i, core) in result.cores.iter().enumerate().take(5) {
        println!(
            "  story candidate {:>2}: {} entities recurring on windows {:?}",
            i + 1,
            core.len(),
            core.layers
        );
    }
    // How many planted stories are recovered (entirely contained in a core)?
    let dense: Vec<VertexSet> = result.cores.iter().map(|c| c.vertices.clone()).collect();
    let recovered = stories.found_in(&dense).len();
    println!("  planted stories fully recovered: {recovered}/{}", stories.len());
    let story_cover = stories.cover(num_vertices);
    let overlap = story_cover.intersection_len(&result.cover);
    println!(
        "  {} of the {} story entities appear in the reported cover",
        overlap,
        story_cover.len()
    );
}
