//! Umbrella crate for the DCCS reproduction workspace.
//!
//! This crate only re-exports the workspace members so the runnable examples
//! under `examples/` and the cross-crate integration tests under `tests/`
//! have a single dependency surface. Library users should depend on the
//! individual crates (`mlgraph`, `coreness`, `dccs`, `quasiclique`,
//! `datasets`) directly.

pub use coreness;
pub use datasets;
pub use dccs;
pub use mlgraph;
pub use quasiclique;
