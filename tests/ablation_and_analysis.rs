//! Integration tests for the ablation switches (Fig. 28) and the result
//! analysis utilities, exercised through the public APIs.

use datasets::{generate, DatasetId, Scale};
use dccs::{
    analyze_result, bottom_up_dccs, bottom_up_dccs_with_options, Algorithm, DccsOptions,
    DccsParams, DccsSession,
};

#[test]
fn every_ablation_variant_produces_valid_results() {
    let ds = generate(DatasetId::Wiki, Scale::Tiny);
    let l = ds.graph.num_layers();
    let small = DccsParams::new(3, 3, 5);
    let large = DccsParams::new(3, l - 2, 5);
    let variants = [
        DccsOptions::default(),
        DccsOptions::no_vertex_deletion(),
        DccsOptions::no_sort_layers(),
        DccsOptions::no_init_topk(),
        DccsOptions::no_preprocessing(),
    ];
    // Per-query option overrides through the session builder: every
    // ablation variant shares one session (and its caches).
    let mut session = DccsSession::new(&ds.graph);
    for opts in variants {
        for result in [
            session.query(small).algorithm(Algorithm::BottomUp).options(opts).run().unwrap(),
            session.query(large).algorithm(Algorithm::TopDown).options(opts).run().unwrap(),
        ] {
            for core in &result.cores {
                assert!(coreness::is_d_dense_multilayer(
                    &ds.graph,
                    &core.layers,
                    &core.vertices,
                    3
                ));
            }
        }
    }
}

#[test]
fn disabling_preprocessing_increases_explored_candidates() {
    // The Fig. 28 effect: without InitTopK the pruning rules engage later, so
    // BU-DCCS computes more candidate cores (and never fewer).
    let ds = generate(DatasetId::German, Scale::Tiny);
    let params = DccsParams::new(3, 3, 10);
    let with_pre = bottom_up_dccs(&ds.graph, &params);
    let without_ir = bottom_up_dccs_with_options(&ds.graph, &params, &DccsOptions::no_init_topk());
    assert!(without_ir.stats.dcc_calls >= with_pre.stats.dcc_calls);
    // The session path with the same override is bit-identical to the
    // legacy free-function path.
    let via_session = DccsSession::new(&ds.graph)
        .query(params)
        .algorithm(Algorithm::BottomUp)
        .options(DccsOptions::no_init_topk())
        .run()
        .unwrap();
    assert_eq!(via_session.stats, without_ir.stats);
    assert_eq!(via_session.cores, without_ir.cores);
}

#[test]
fn vertex_deletion_only_removes_hopeless_vertices() {
    // Vertex deletion never changes the candidate d-CCs (the removed vertices
    // cannot belong to any of them), so the greedy algorithm — which examines
    // every candidate — must return the same cover with and without it. The
    // search algorithms may differ slightly (different exploration order of
    // the same 1/4-approximate scheme) but must stay in the same band.
    let ds = generate(DatasetId::Author, Scale::Tiny);
    for (d, s) in [(2u32, 2usize), (3, 3), (2, 4)] {
        let params = DccsParams::new(d, s, 5);
        let gd_with = dccs::greedy_dccs(&ds.graph, &params);
        let gd_without =
            dccs::greedy_dccs_with_options(&ds.graph, &params, &DccsOptions::no_vertex_deletion());
        assert_eq!(gd_with.cover_size(), gd_without.cover_size(), "greedy d={d} s={s}");

        let bu_with = bottom_up_dccs(&ds.graph, &params);
        let bu_without =
            bottom_up_dccs_with_options(&ds.graph, &params, &DccsOptions::no_vertex_deletion());
        let min = bu_with.cover_size().min(bu_without.cover_size());
        let max = bu_with.cover_size().max(bu_without.cover_size());
        assert!(4 * min >= max, "bottom-up d={d} s={s}: {min} vs {max}");
    }
}

#[test]
fn overlap_analysis_reflects_diversification() {
    // The paper observes that d-CCs overlap substantially; diversified
    // selection still leaves each reported core with some exclusive
    // contribution. The report must also be internally consistent.
    let ds = generate(DatasetId::Ppi, Scale::Full);
    let params = DccsParams::new(2, 4, 10);
    let result = bottom_up_dccs(&ds.graph, &params);
    let report = analyze_result(ds.graph.num_vertices(), &result);
    assert_eq!(report.num_cores, result.num_cores());
    assert_eq!(report.cover_size, result.cover_size());
    assert!(report.cover_size <= report.total_core_size);
    assert!((0.0..1.0).contains(&report.redundancy));
    // Note: two different layer subsets can legitimately yield the same
    // vertex set, so identical cores (Jaccard 1.0) may appear in the result.
    assert!(report.max_jaccard() <= 1.0 && report.mean_jaccard() <= report.max_jaccard());
    assert_eq!(
        report.pairwise_jaccard.len(),
        report.num_cores * report.num_cores.saturating_sub(1) / 2
    );
    let exclusive_total: usize = report.exclusive_counts.iter().sum();
    assert!(exclusive_total <= report.cover_size);
    // At least some cores contribute vertices nobody else covers.
    assert!(report.exclusive_counts.iter().any(|&c| c > 0));
}
