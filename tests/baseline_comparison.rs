//! Integration tests for the quasi-clique baseline comparison — the code
//! path behind the paper's Figs. 29–32.

use datasets::{generate, DatasetId, Scale};
use dccs::{
    bottom_up_dccs, complexes_found, containment_distribution, CoverSimilarity, DccsParams,
};
use mlgraph::VertexSet;
use quasiclique::{mimag_baseline, supporting_layers, QcConfig};

fn ppi() -> datasets::Dataset {
    // The full-scale PPI analogue (328 vertices, like the original dataset)
    // gives a clean separation between planted modules and background noise.
    generate(DatasetId::Ppi, Scale::Full)
}

#[test]
fn baseline_finds_quasi_cliques_on_the_module_dataset() {
    let ds = ppi();
    let s = ds.graph.num_layers() / 2;
    let config = QcConfig { gamma: 0.8, min_support: s, min_size: 3, ..QcConfig::default() };
    let result = mimag_baseline(&ds.graph, &config, 10);
    assert!(result.num_results() > 0, "the planted modules contain quasi-cliques");
    for q in &result.quasi_cliques {
        assert!(q.len() >= 3);
        assert!(supporting_layers(&ds.graph, q, 0.8).len() >= s);
    }
}

#[test]
fn dccs_cover_contains_most_of_the_quasi_clique_cover() {
    // The headline claim of Section VI: d-CCs cover most of what the
    // quasi-clique miner finds (high recall), plus more.
    let ds = ppi();
    let s = ds.graph.num_layers() / 2;
    let d = 2;
    let dccs_result = bottom_up_dccs(&ds.graph, &DccsParams::new(d, s, 10));
    let qc = mimag_baseline(
        &ds.graph,
        &QcConfig { gamma: 0.8, min_support: s, min_size: (d + 1) as usize, ..QcConfig::default() },
        10,
    );
    if qc.cover_size() == 0 {
        return; // nothing to compare on this tiny instance
    }
    let sim = CoverSimilarity::compute(&qc.cover, &dccs_result.cover);
    assert!(sim.recall >= 0.5, "recall {:.3} too low", sim.recall);
    assert!(dccs_result.cover_size() >= qc.cover_size());
}

#[test]
fn containment_distribution_is_a_probability_distribution() {
    let ds = ppi();
    let s = ds.graph.num_layers() / 2;
    let dccs_result = bottom_up_dccs(&ds.graph, &DccsParams::new(2, s, 10));
    let qc = mimag_baseline(
        &ds.graph,
        &QcConfig { gamma: 0.8, min_support: s, min_size: 3, ..QcConfig::default() },
        10,
    );
    let qcs: Vec<Vec<u32>> = qc.quasi_cliques.iter().map(|q| q.to_vec()).collect();
    for (size, dist) in containment_distribution(&qcs, &dccs_result.cover) {
        assert_eq!(dist.len(), size + 1);
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "distribution for |Q|={size} sums to {total}");
    }
}

#[test]
fn complexes_found_is_monotone_in_the_subgraph_collection() {
    let ds = generate(DatasetId::Ppi, Scale::Full);
    let params = DccsParams::new(2, 4, 10);
    let result = bottom_up_dccs(&ds.graph, &params);
    let all: Vec<VertexSet> = result.cores.iter().map(|c| c.vertices.clone()).collect();
    let half: Vec<VertexSet> = all.iter().take(all.len() / 2).cloned().collect();
    let with_all = complexes_found(&ds.ground_truth.modules, &all);
    let with_half = complexes_found(&ds.ground_truth.modules, &half);
    assert!(with_all >= with_half);
    assert!(with_all > 0.0, "BU-DCCS must recover some planted complexes");
}
