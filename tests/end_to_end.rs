//! Cross-crate integration tests: dataset generation → preprocessing →
//! all three DCCS algorithms → metrics, exercised through the public APIs
//! only.

use datasets::{all_datasets, generate, DatasetId, Scale};
use dccs::{
    bottom_up_dccs, greedy_dccs, top_down_dccs, Algorithm, DccsParams, DccsSession, QuerySpec,
};
use mlgraph::GraphStats;

#[test]
fn every_dataset_analogue_generates_and_validates() {
    for id in all_datasets() {
        let ds = generate(id, Scale::Tiny);
        assert!(ds.graph.validate(), "{:?} analogue has a corrupt layer", id);
        assert_eq!(ds.graph.num_layers(), ds.spec.synthetic_layers);
        let stats = GraphStats::compute(&ds.graph);
        assert!(stats.total_edges > 0);
        assert!(stats.union_edges <= stats.total_edges);
        if id.has_ground_truth() {
            assert!(!ds.ground_truth.is_empty());
        }
    }
}

#[test]
fn all_algorithms_agree_on_core_validity_for_a_module_dataset() {
    let ds = generate(DatasetId::Ppi, Scale::Tiny);
    let params = DccsParams::new(2, 3, 5);
    // All three algorithms as one session batch over the same graph.
    let mut session = DccsSession::new(&ds.graph);
    let batch = session
        .run_batch(&[
            QuerySpec::new(params).with_algorithm(Algorithm::Greedy),
            QuerySpec::new(params).with_algorithm(Algorithm::BottomUp),
            QuerySpec::new(params).with_algorithm(Algorithm::TopDown),
        ])
        .unwrap();
    // No limits in force: every per-spec slot succeeds.
    let gd = batch[0].as_ref().unwrap();
    let bu = batch[1].as_ref().unwrap();
    let td = batch[2].as_ref().unwrap();
    for result in [gd, bu, td] {
        assert!(result.cover_size() > 0, "planted modules must be detectable");
        for core in &result.cores {
            assert_eq!(core.layers.len(), params.s);
            assert!(coreness::is_d_dense_multilayer(
                &ds.graph,
                &core.layers,
                &core.vertices,
                params.d
            ));
        }
    }
    // The three covers are comparable in size (all are constant-factor
    // approximations of the same objective).
    let max = gd.cover_size().max(bu.cover_size()).max(td.cover_size());
    assert!(4 * bu.cover_size() >= max);
    assert!(4 * td.cover_size() >= max);
    assert!(gd.cover_size() * 5 >= max * 3); // greedy is at least (1 - 1/e)
}

#[test]
fn search_algorithms_examine_fewer_candidates_than_greedy() {
    let ds = generate(DatasetId::German, Scale::Tiny);
    let l = ds.graph.num_layers();
    // Small s: BU-DCCS explores a pruned subtree of the C(l, s) candidates.
    let params = DccsParams::new(3, 3, 10);
    let gd = greedy_dccs(&ds.graph, &params);
    let bu = bottom_up_dccs(&ds.graph, &params);
    assert!(bu.stats.candidates_generated <= gd.stats.candidates_generated);
    // Large s: TD-DCCS explores far fewer candidates than greedy.
    let params = DccsParams::new(3, l - 2, 10);
    let gd = greedy_dccs(&ds.graph, &params);
    let td = top_down_dccs(&ds.graph, &params);
    assert!(td.stats.candidates_generated <= gd.stats.candidates_generated);
}

#[test]
fn planted_modules_are_recovered_on_their_layers() {
    // Strongly planted modules must appear inside the d-CC of their layers.
    let ds = generate(DatasetId::Ppi, Scale::Full);
    let params = DccsParams::new(2, 4, 15);
    let bu = bottom_up_dccs(&ds.graph, &params);
    // At least half of the planted complexes are fully covered by the result
    // cover (they are planted with density 0.9 on 5 of 8 layers).
    let fully_covered =
        ds.ground_truth.modules.iter().filter(|m| m.iter().all(|&v| bu.cover.contains(v))).count();
    assert!(
        2 * fully_covered >= ds.ground_truth.len(),
        "only {fully_covered}/{} planted complexes covered",
        ds.ground_truth.len()
    );
}

#[test]
fn cover_size_shrinks_as_s_and_d_grow() {
    // The optimum cover is monotone non-increasing in both s and d
    // (Properties 2–3); the approximation algorithms track that trend. The
    // endpoints of the sweep are far enough apart that the trend must be
    // visible even through the 1/4-approximation. The whole sweep runs as
    // one session batch — the canonical workload shape of the paper.
    let ds = generate(DatasetId::Author, Scale::Tiny);
    let k = 10;
    let mut session = DccsSession::new(&ds.graph);
    let specs: Vec<QuerySpec> = [(2u32, 1usize), (2, 5), (1, 2), (5, 2)]
        .into_iter()
        .map(|(d, s)| QuerySpec::new(DccsParams::new(d, s, k)).with_algorithm(Algorithm::BottomUp))
        .collect();
    let covers: Vec<usize> = session
        .run_batch(&specs)
        .unwrap()
        .iter()
        .map(|r| r.as_ref().unwrap().cover_size())
        .collect();
    let (loose_s, tight_s, loose_d, tight_d) = (covers[0], covers[1], covers[2], covers[3]);
    assert!(tight_s <= loose_s, "cover grew when s grew: {tight_s} > {loose_s}");
    assert!(tight_d <= loose_d, "cover grew when d grew: {tight_d} > {loose_d}");
}

#[test]
fn edge_list_roundtrip_preserves_dccs_results() {
    let ds = generate(DatasetId::Ppi, Scale::Tiny);
    let mut buffer = Vec::new();
    mlgraph::io::write_edge_list(&ds.graph, &mut buffer).unwrap();
    let reloaded = mlgraph::io::edge_list::parse_edge_list(std::io::Cursor::new(buffer)).unwrap();
    assert_eq!(reloaded.num_vertices(), ds.graph.num_vertices());
    assert_eq!(reloaded.total_edges(), ds.graph.total_edges());
    let params = DccsParams::new(2, 2, 5);
    // Vertex ids may be permuted by label interning, so compare cover sizes.
    let original = bottom_up_dccs(&ds.graph, &params).cover_size();
    let roundtripped = bottom_up_dccs(&reloaded, &params).cover_size();
    assert_eq!(original, roundtripped);
}
