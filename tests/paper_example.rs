//! A reconstruction of the paper's running example (Fig. 1 and the top-2
//! example of Section II): a 4-layer graph with 15 vertices in which
//! `Q = {a,…,i}` induces a dense subgraph on all layers and `{g,h,i,j}` is
//! only sparsely connected.
//!
//! The exact edge lists of Fig. 1 are not published, so the test builds a
//! graph with the same qualitative structure and checks the properties the
//! paper derives from the example: the d-CC notion keeps the large dense
//! group, discards the sparse group, and the top-k diversified d-CCs cover
//! the structures that recur on enough layers.

use dccs::{bottom_up_dccs, exact_dccs, greedy_dccs, top_down_dccs, DccsParams};
use mlgraph::{MultiLayerGraphBuilder, VertexSet};

/// Vertex naming follows the paper: a..j, x, y, m, k, n → 0..14.
const A: u32 = 0;
const I: u32 = 8;
const J: u32 = 9;
const Y: u32 = 11;
const M: u32 = 12;
const K: u32 = 13;
const N: u32 = 14;

fn fig1_like_graph() -> mlgraph::MultiLayerGraph {
    let mut b = MultiLayerGraphBuilder::new(15, 4);
    // Core block a..i (vertices 0..=8): 3-dense on every layer.
    for layer in 0..4 {
        for u in A..=I {
            for v in (u + 1)..=I {
                // A near-clique: drop a few edges in a rotating pattern so the
                // block is dense but not complete.
                if !(u + v + layer as u32).is_multiple_of(7) {
                    b.add_edge(layer, u, v).unwrap();
                }
            }
        }
    }
    // j (9) attaches sparsely (two edges) to g and h on every layer.
    for layer in 0..4 {
        b.add_edge(layer, J, 6).unwrap();
        b.add_edge(layer, J, 7).unwrap();
    }
    // x, y, m (10, 11, 12): a triangle with the core on layers 0 and 2.
    for layer in [0usize, 2] {
        for (u, v) in
            [(10, 11), (11, 12), (10, 12), (10, A), (11, 1), (12, 2), (10, 3), (11, 4), (12, 5)]
        {
            b.add_edge(layer, u, v).unwrap();
        }
    }
    // m, n, k (12, 13, 14): dense with the core on layers 1 and 3.
    for layer in [1usize, 3] {
        for (u, v) in
            [(12, 13), (13, 14), (12, 14), (13, A), (14, 1), (12, 2), (13, 3), (14, 4), (12, 5)]
        {
            b.add_edge(layer, u, v).unwrap();
        }
    }
    b.build()
}

#[test]
fn the_dense_block_is_a_coherent_core_on_all_layers() {
    let g = fig1_like_graph();
    let cc = coreness::d_coherent_core_full(&g, &[0, 1, 2, 3], 3);
    // The a..i block survives; j (degree 2 everywhere) is peeled away.
    for v in A..=I {
        assert!(cc.contains(v), "core vertex {v} missing from the 3-CC");
    }
    assert!(cc.len() >= 9);
}

#[test]
fn sparse_attachment_is_not_recognized_as_dense() {
    let g = fig1_like_graph();
    // The quasi-clique dilemma of the introduction: with a small density
    // threshold, {g,h,j} would be accepted as a quasi-clique; the d-CC notion
    // instead requires degree ≥ d inside the subgraph on every chosen layer,
    // and no 3-CC containing j exists on any pair of layers.
    for layers in [[0usize, 1], [1, 2], [2, 3], [0, 3]] {
        let cc = coreness::d_coherent_core_full(&g, &layers, 3);
        assert!(!cc.contains(J), "j must not appear in the 3-CC w.r.t. {layers:?}");
    }
}

#[test]
fn top_two_diversified_cores_cover_both_recurring_groups() {
    let g = fig1_like_graph();
    // d = 3, s = 2, k = 2 — the same parameters as the Section II example.
    let params = DccsParams::new(3, 2, 2);
    let exact = exact_dccs(&g, &params);
    let greedy = greedy_dccs(&g, &params);
    let bu = bottom_up_dccs(&g, &params);
    let td = top_down_dccs(&g, &params);

    // The optimal pair covers the core block plus both satellite groups.
    let expected_core = VertexSet::from_iter(g.num_vertices(), A..=I);
    assert!(expected_core.is_subset_of(&exact.cover));
    assert!(exact.cover.contains(Y) || exact.cover.contains(M));
    assert!(exact.cover.contains(K) || exact.cover.contains(N));

    // All approximation algorithms reach the same cover size here.
    assert_eq!(greedy.cover_size(), exact.cover_size());
    assert_eq!(bu.cover_size(), exact.cover_size());
    assert_eq!(td.cover_size(), exact.cover_size());
    // And j is never part of any reported core.
    for result in [&greedy, &bu, &td] {
        assert!(!result.cover.contains(J));
    }
}

#[test]
fn hierarchy_and_containment_on_the_example() {
    let g = fig1_like_graph();
    // Property 2 (hierarchy in d) and Property 3 (containment in L).
    let all = [0usize, 1, 2, 3];
    let mut previous = coreness::d_coherent_core_full(&g, &all, 0);
    for d in 1..=5 {
        let current = coreness::d_coherent_core_full(&g, &all, d);
        assert!(current.is_subset_of(&previous));
        previous = current;
    }
    let pair = coreness::d_coherent_core_full(&g, &[0, 1], 3);
    let quad = coreness::d_coherent_core_full(&g, &all, 3);
    assert!(quad.is_subset_of(&pair));
}
