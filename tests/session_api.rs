//! Cross-crate integration tests for the session API: algorithm
//! auto-selection on the synthetic dataset analogues, typed query errors,
//! and batched sweeps — everything through the public `dccs::DccsSession`
//! surface.

use datasets::{generate, DatasetId, Scale};
use dccs::{Algorithm, DccsError, DccsParams, DccsSession, QuerySpec};

#[test]
fn auto_selection_follows_the_paper_regimes_on_tiny_analogues() {
    for id in [DatasetId::Wiki, DatasetId::German, DatasetId::Author] {
        let ds = generate(id, Scale::Tiny);
        let l = ds.graph.num_layers();
        // s = l − 1 leaves only l candidates: the candidate-count-aware
        // large-s rule must pick lattice enumeration over a degenerate
        // search tree, dense or not.
        if l >= 4 {
            let large = DccsParams::new(3, l - 1, 1);
            assert_eq!(
                Algorithm::Auto.resolve(&ds.graph, &large),
                Algorithm::Greedy,
                "{id:?}: s = l − 1 must pick GD"
            );
        }
        // k at least C(l, s): the search trees cannot prune, so full
        // enumeration (greedy) is chosen.
        let exhaustive = DccsParams::new(3, 1, l);
        assert_eq!(
            Algorithm::Auto.resolve(&ds.graph, &exhaustive),
            Algorithm::Greedy,
            "{id:?}: k >= candidates must pick GD"
        );
    }
}

/// Regression test for the `Algorithm::Auto` large-`s` policy gap: on the
/// tiny Wiki analogue at `s = l − 1` the old regime rules picked TD-DCCS,
/// which the `auto_selection` bench group measured at ~0.45 efficiency
/// against the fixed algorithms (GD was fastest). The candidate-count-aware
/// rule must resolve the query to GD — pinned through the session so the
/// recorded `SearchStats::algorithm` is checked, not just the resolver.
#[test]
fn auto_resolves_tiny_wiki_large_s_to_greedy() {
    let ds = generate(DatasetId::Wiki, Scale::Tiny);
    let l = ds.graph.num_layers();
    assert!(l >= 4, "the Wiki analogue has many layers");
    let params = DccsParams::new(3, l - 1, 10);
    let mut session = DccsSession::new(&ds.graph);
    let result = session.query(params).algorithm(Algorithm::Auto).run().unwrap();
    assert_eq!(result.stats.algorithm, Some(Algorithm::Greedy));
    // The policy only selects — the result must equal the fixed GD run.
    let fixed = session.query(params).algorithm(Algorithm::Greedy).run().unwrap();
    assert_eq!(result.cores, fixed.cores);
    assert_eq!(result.stats, fixed.stats);
}

#[test]
fn auto_picks_bottom_up_for_small_support_on_sparse_analogues() {
    // The Stack/English analogues have enough layers for a genuinely small
    // s regime (s < l/2) with k below the candidate count.
    for id in [DatasetId::Stack, DatasetId::English] {
        let ds = generate(id, Scale::Tiny);
        let l = ds.graph.num_layers();
        if l < 6 {
            continue;
        }
        let params = DccsParams::new(3, 2, 3);
        let resolved = Algorithm::Auto.resolve(&ds.graph, &params);
        assert!(
            resolved == Algorithm::BottomUp || resolved == Algorithm::Greedy,
            "{id:?}: small s resolved to {resolved:?}"
        );
    }
}

#[test]
fn auto_query_result_equals_its_resolved_fixed_query() {
    let ds = generate(DatasetId::German, Scale::Tiny);
    let params = DccsParams::new(3, 2, 5);
    let mut session = DccsSession::new(&ds.graph);
    let auto = session.query(params).run().unwrap();
    let resolved = auto.stats.algorithm.expect("auto records its choice");
    assert_ne!(resolved, Algorithm::Auto);
    let fixed = session.query(params).algorithm(resolved).run().unwrap();
    assert_eq!(auto.cores, fixed.cores);
    assert_eq!(auto.stats, fixed.stats);
}

#[test]
fn session_reports_typed_errors_for_every_invalid_parameter_class() {
    let ds = generate(DatasetId::Ppi, Scale::Tiny);
    let l = ds.graph.num_layers();
    let mut session = DccsSession::new(&ds.graph);
    assert_eq!(session.query(DccsParams::new(2, 0, 1)).run().unwrap_err(), DccsError::SupportZero);
    assert_eq!(
        session.query(DccsParams::new(2, l + 1, 1)).run().unwrap_err(),
        DccsError::SupportExceedsLayers { s: l + 1, num_layers: l }
    );
    assert_eq!(
        session.query(DccsParams::new(2, 2, 0)).run().unwrap_err(),
        DccsError::ResultSizeZero
    );
    // The messages are one-line and human-readable.
    let msg = DccsError::SupportExceedsLayers { s: l + 1, num_layers: l }.to_string();
    assert!(msg.contains("exceeds"), "unexpected message: {msg}");
    assert!(!msg.contains('\n'));
}

#[test]
fn batched_sweep_over_an_analogue_matches_one_shot_queries() {
    let ds = generate(DatasetId::Wiki, Scale::Tiny);
    let l = ds.graph.num_layers();
    let specs: Vec<QuerySpec> =
        (1..=l.min(4)).map(|s| QuerySpec::new(DccsParams::new(3, s, 5))).collect();
    let mut session = DccsSession::new(&ds.graph);
    let batch = session.run_batch(&specs).unwrap();
    for (result, spec) in batch.iter().zip(&specs) {
        let result = result.as_ref().expect("unlimited batch specs all succeed");
        let one_shot = DccsSession::new(&ds.graph).query(spec.params).run().unwrap();
        assert_eq!(result.cores, one_shot.cores, "s={}", spec.params.s);
        assert_eq!(result.stats, one_shot.stats, "s={}", spec.params.s);
    }
}

/// `run_batch` validation is all-or-nothing: one invalid spec — wherever it
/// sits in the sweep — fails the whole call up front with that spec's typed
/// error and produces no partial results, and the session stays fully
/// usable. (Runtime failures, by contrast, stay confined to their spec's
/// slot — see `crates/core/tests/fault_injection.rs`.)
#[test]
fn run_batch_rejects_the_whole_sweep_on_any_invalid_spec() {
    let ds = generate(DatasetId::German, Scale::Tiny);
    let l = ds.graph.num_layers();
    let valid = QuerySpec::new(DccsParams::new(2, 2, 2));
    let invalid_s = QuerySpec::new(DccsParams::new(2, l + 7, 2));
    let invalid_k = QuerySpec::new(DccsParams::new(2, 2, 0));
    let mut session = DccsSession::new(&ds.graph);
    // Invalid spec first, in the middle, and last: the error is always the
    // first invalid spec's, and Result<Vec<_>, _> leaves no partial output.
    assert_eq!(
        session.run_batch(&[invalid_s, valid, valid]).unwrap_err(),
        DccsError::SupportExceedsLayers { s: l + 7, num_layers: l }
    );
    assert_eq!(
        session.run_batch(&[valid, invalid_k, valid]).unwrap_err(),
        DccsError::ResultSizeZero
    );
    assert_eq!(
        session.run_batch(&[valid, valid, invalid_s]).unwrap_err(),
        DccsError::SupportExceedsLayers { s: l + 7, num_layers: l }
    );
    // Two invalid specs: validation reports the earliest one.
    assert_eq!(
        session.run_batch(&[valid, invalid_k, invalid_s]).unwrap_err(),
        DccsError::ResultSizeZero
    );
    // The rejected batches ran nothing that corrupted the session: the same
    // sweep without the bad spec still matches fresh one-shot queries.
    let batch = session.run_batch(&[valid, valid]).unwrap();
    let fresh = DccsSession::new(&ds.graph).query(valid.params).run().unwrap();
    assert_eq!(batch.len(), 2);
    let first = batch[0].as_ref().unwrap();
    assert_eq!(first.cores, fresh.cores);
    assert_eq!(first.stats, fresh.stats);
    assert_eq!(batch[1].as_ref().unwrap().cores, fresh.cores);
}

/// An empty sweep is a no-op, not an error.
#[test]
fn run_batch_of_nothing_returns_nothing() {
    let ds = generate(DatasetId::German, Scale::Tiny);
    let mut session = DccsSession::new(&ds.graph);
    assert_eq!(session.run_batch(&[]).unwrap().len(), 0);
}

#[test]
fn session_sweep_reuses_state_without_changing_results() {
    // The d-then-s grid of the paper's experiments through one session,
    // checked against fresh sessions — the cross-crate complement of the
    // property test in crates/core/tests/session_sweep.rs.
    let ds = generate(DatasetId::Author, Scale::Tiny);
    let l = ds.graph.num_layers();
    let mut session = DccsSession::new(&ds.graph);
    for d in [2u32, 3] {
        for s in 1..=l.min(3) {
            let params = DccsParams::new(d, s, 5);
            let swept = session.query(params).run().unwrap();
            let fresh = DccsSession::new(&ds.graph).query(params).run().unwrap();
            assert_eq!(swept.cores, fresh.cores, "d={d} s={s}");
            assert_eq!(swept.stats, fresh.stats, "d={d} s={s}");
        }
    }
}

#[test]
fn every_algorithm_is_reachable_through_the_session() {
    let ds = generate(DatasetId::Ppi, Scale::Tiny);
    let params = DccsParams::new(3, 4, 2);
    let mut session = DccsSession::new(&ds.graph);
    for algorithm in [Algorithm::Greedy, Algorithm::BottomUp, Algorithm::TopDown, Algorithm::Exact]
    {
        let result = session.query(params).algorithm(algorithm).run().unwrap();
        assert_eq!(result.stats.algorithm, Some(algorithm), "{}", algorithm.name());
        for core in &result.cores {
            assert!(coreness::is_d_dense_multilayer(
                &ds.graph,
                &core.layers,
                &core.vertices,
                params.d
            ));
        }
    }
}

/// The `--index` override must select the recorded peeling representation
/// without changing any result, and the session must keep serving queries
/// on its persistent crew across overrides and thread widths.
#[test]
fn index_override_is_recorded_and_bit_identical() {
    use dccs::{DccsOptions, IndexChoice, IndexPath};
    let ds = generate(DatasetId::Ppi, Scale::Tiny);
    let params = DccsParams::new(2, 2, 5);
    let reference =
        DccsSession::new(&ds.graph).query(params).algorithm(Algorithm::Greedy).run().unwrap();
    for (choice, expect) in
        [(IndexChoice::Csr, Some(IndexPath::Csr)), (IndexChoice::Dense, Some(IndexPath::Dense))]
    {
        for threads in [1usize, 3] {
            let opts = DccsOptions { index: choice, threads, ..DccsOptions::default() };
            let mut session = DccsSession::with_options(&ds.graph, opts);
            let result = session.query(params).algorithm(Algorithm::Greedy).run().unwrap();
            assert_eq!(result.stats.index_path, expect, "{choice:?} threads={threads}");
            assert_eq!(result.cores, reference.cores, "{choice:?} threads={threads}");
            assert_eq!(result.cover.to_vec(), reference.cover.to_vec());
            // A second query on the same session reuses the crew and the
            // context caches; still identical.
            let again = session.query(params).algorithm(Algorithm::Greedy).run().unwrap();
            assert_eq!(again.cores, reference.cores, "{choice:?} threads={threads} (second)");
        }
    }
}
