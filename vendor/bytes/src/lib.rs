//! Minimal vendored stand-in for the `bytes` crate, covering exactly the
//! surface the `mlgraph` binary snapshot format uses: `BytesMut` as an
//! append-only builder, `Bytes` as a cursor-style reader, and the `Buf` /
//! `BufMut` traits carrying the little-endian accessors.

/// An immutable byte buffer with an internal read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.to_vec(), pos: 0 }
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new buffer holding the given sub-range of the unread bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes { data: self.data[self.pos..][range].to_vec(), pos: 0 }
    }

    /// Copies the unread bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let start = self.pos;
        assert!(start + n <= self.data.len(), "Bytes: read past end of buffer");
        self.pos += n;
        &self.data[start..start + n]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

/// Read-side accessors (little-endian), implemented by [`Bytes`].
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Reads `len` bytes into a new [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        Bytes { data: self.take(len).to_vec(), pos: 0 }
    }
}

/// A growable byte buffer builder.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Freezes the builder into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

/// Write-side accessors (little-endian), implemented by [`BytesMut`].
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_builder_and_reader() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"HDR");
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 3 + 1 + 4 + 8);
        assert_eq!(r.copy_to_bytes(3).as_ref(), b"HDR");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert!(r.is_empty());
    }

    #[test]
    fn slicing_is_relative_to_the_cursor() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(b.slice(1..3).to_vec(), vec![2, 3]);
        assert_eq!(Bytes::from_static(b"xy").len(), 2);
    }
}
