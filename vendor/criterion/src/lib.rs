//! Minimal vendored benchmark harness exposing the subset of the `criterion`
//! API the workspace benches use. Instead of criterion's statistical
//! machinery it runs a fixed warm-up, then samples the benchmark until a
//! small time budget is exhausted and reports the median per-iteration time.
//!
//! Output format (one line per benchmark, parsed by the bench runner):
//!
//! ```text
//! bench: <group>/<name> ... median <ns> ns (<samples> samples)
//! ```

use std::time::{Duration, Instant};

/// Per-process registry entry so `criterion_main!` can honor a substring
/// filter passed on the command line (`cargo bench -- <filter>`).
fn filter_from_args() -> Option<String> {
    // Skip flags (e.g. --bench) that cargo forwards; the first free-standing
    // token is the substring filter.
    std::env::args().skip(1).find(|a| !a.starts_with('-'))
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { filter: filter_from_args(), default_sample_size: 30 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_owned(), sample_size: None }
    }

    /// Registers a stand-alone benchmark (groupless).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_owned();
        run_benchmark(self.filter.as_deref(), &label, self.default_sample_size, f);
        self
    }
}

/// A named identifier for parameterized benchmarks.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered from the parameter alone (criterion's
    /// `BenchmarkId::from_parameter`).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }

    /// An id with a function name and a parameter.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.default_sample_size)
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion.filter.as_deref(), &label, self.effective_samples(), f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(self.criterion.filter.as_deref(), &label, self.effective_samples(), |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to every benchmark closure; [`Bencher::iter`] times the workload.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the most recent `iter` call.
    sample_ns: u128,
}

impl Bencher {
    /// Times one sample of `f`, storing nanoseconds per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.sample_ns = start.elapsed().as_nanos().max(1);
        std::hint::black_box(&out);
    }
}

fn run_benchmark<F>(filter: Option<&str>, label: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = filter {
        if !label.contains(filter) {
            return;
        }
    }
    let mut b = Bencher { sample_ns: 0 };
    // Warm-up: one untimed run.
    f(&mut b);
    let budget = Duration::from_millis(500);
    let started = Instant::now();
    let mut observed: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples.max(5) {
        f(&mut b);
        observed.push(b.sample_ns);
        if started.elapsed() > budget && observed.len() >= 5 {
            break;
        }
    }
    observed.sort_unstable();
    let median = observed[observed.len() / 2];
    println!("bench: {label} ... median {median} ns ({} samples)", observed.len());
}

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-running function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
