//! Minimal vendored stand-in for `crossbeam`'s scoped threads, backed by
//! `std::thread::scope`. Only the `crossbeam::scope(|s| { s.spawn(|_| …) })`
//! shape used by the parallel candidate generation is provided.

/// A scope handle passed to [`scope`] and to every spawned closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again, so
    /// nested spawns are possible (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which spawned threads may borrow from the environment;
/// all threads are joined before this returns. Mirrors `crossbeam::scope`,
/// including the `Result` wrapper (`Err` is never produced here — a panicking
/// child propagates the panic, as with `std::thread::scope`).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let data: Vec<usize> = (0..100).collect();
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    let local: usize = data.iter().sum();
                    counter.fetch_add(local, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4950 * 4);
    }
}
