//! Minimal vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only [`Mutex`] is provided (the single primitive the workspace uses).
//! Poisoning is translated into a panic, matching parking_lot's
//! no-poisoning API shape.

/// A mutex with parking_lot's non-poisoning API, backed by `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Acquires the lock, panicking if a previous holder panicked.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned by a panicking holder")
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned by a panicking holder")
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(Vec::<u32>::new());
        m.lock().push(1);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
