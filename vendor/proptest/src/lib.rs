//! Minimal vendored property-testing harness exposing the subset of the
//! `proptest` API the workspace tests use: the `proptest!` macro with
//! `pattern in strategy` arguments, range / tuple / `prop::collection::vec`
//! strategies, `prop_map`, and `prop_assert*`.
//!
//! Differences from upstream proptest: generation is plain seeded random
//! sampling (no shrinking), and the per-test seed is derived from the test
//! name so runs are deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases executed per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies by the generated test body.
pub type TestRng = StdRng;

/// Builds the deterministic per-test RNG (used by the `proptest!` expansion).
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Derives a deterministic seed from a test name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

impl_range_strategies!(u32, u64, usize);

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategies!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E), (A, B, C, D, E, F));

/// `prop::…` namespace mirror.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Admissible length specifications for [`vec`].
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
            }
        }

        /// Strategy producing vectors whose elements come from `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Vectors of `element` values with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property test (no shrinking, so this is
/// `assert!` with proptest's name).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests. Supports the forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn name(x in 0u32..7, v in prop::collection::vec(0usize..3, 1..9)) { … }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(#[test] fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng: $crate::TestRng =
                    $crate::new_rng($crate::seed_for(stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs(x in 1u32..10, v in prop::collection::vec((0usize..5, 0usize..5), 0..20)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 5 && b < 5);
            }
        }

        #[test]
        fn prop_map_transforms(doubled in (0u32..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }
    }

    #[test]
    fn deterministic_seed_per_name() {
        assert_eq!(crate::seed_for("abc"), crate::seed_for("abc"));
        assert_ne!(crate::seed_for("abc"), crate::seed_for("abd"));
    }
}
