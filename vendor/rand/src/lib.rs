//! Minimal vendored stand-in for the `rand` crate.
//!
//! Provides a deterministic xoshiro256** generator behind the `rand 0.8`
//! names the workspace uses (`StdRng::seed_from_u64`, `Rng::gen_range` /
//! `gen` / `gen_bool`, `SliceRandom::{shuffle, choose, choose_multiple}`).
//! Streams differ from upstream `rand`, but every consumer in this workspace
//! only relies on determinism for a fixed seed, not on specific values.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    #[doc(hidden)]
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}
impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}
impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits >> 63 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn from_bits(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    #[doc(hidden)]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // bounds used here (all far below 2^32) and determinism is what matters.
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + uniform_below(rng, span) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "gen_range: empty range");
                    let span = (end - start) as u64 + 1;
                    start + uniform_below(rng, span) as $t
                }
            }
        )*
    };
}

impl_int_ranges!(u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + <f64 as Standard>::from_bits(rng.next_u64()) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::from_bits(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            StdRng {
                state: [
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Random-order helpers on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all of them when
        /// `amount` exceeds the slice length).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_below(rng, self.len() as u64) as usize])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let mut indices: Vec<usize> = (0..self.len()).collect();
            indices.shuffle(rng);
            indices.truncate(amount.min(self.len()));
            indices.into_iter().map(|i| &self[i]).collect::<Vec<_>>().into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3u32..9);
            assert!((3..9).contains(&v));
            let w: usize = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut data: Vec<u32> = (0..50).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(data.choose(&mut rng).is_some());
        let picked: Vec<u32> = data.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "choose_multiple must pick distinct elements");
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
