//! Minimal vendored stand-in for `serde`.
//!
//! The build environment has no network access and no crates.io registry, so
//! this workspace vendors the *exact* dependency surface it uses. Nothing in
//! the repository currently calls a serialization method — the `Serialize` /
//! `Deserialize` derives only brand types as serializable — so the traits are
//! plain markers and the derives emit empty impls. If real serialization is
//! ever needed, replace this crate with the upstream `serde` (the API here is
//! name-compatible).

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {}
          impl Deserialize for $t {})*
    };
}

impl_markers!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
