//! No-op `Serialize` / `Deserialize` derives for the vendored serde stand-in.
//!
//! The traits in the companion `serde` crate are markers with no items, so
//! the derive only has to name the type. Generic types are not supported —
//! none of the workspace types deriving serde traits are generic.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type identifier following the `struct` / `enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut saw_keyword = false;
    for tt in input {
        if let TokenTree::Ident(ident) = tt {
            let text = ident.to_string();
            if saw_keyword {
                return text;
            }
            if text == "struct" || text == "enum" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde_derive stand-in: expected a struct or enum definition");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}").parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Deserialize for {name} {{}}").parse().unwrap()
}
