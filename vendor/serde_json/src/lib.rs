//! Minimal vendored stand-in for `serde_json`: a JSON value tree plus a
//! pretty emitter. The bench runner builds [`Value`] trees by hand and writes
//! them with [`to_string_pretty`]; no generic `Serialize` bridge is provided
//! because the offline `serde` stand-in is a marker-trait shim.

use std::fmt::Write as _;

/// A JSON value. Object keys preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, stored as `f64` (integers round-trip exactly up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(v as f64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Number(v as f64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(v as f64)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>, V: Into<Value>>(pairs: Vec<(K, V)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v.into())).collect())
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_into(out: &mut String, n: f64) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 9.0e15 {
            let _ = write!(out, "{}", n as i64);
        } else {
            let _ = write!(out, "{n}");
        }
    } else {
        out.push_str("null");
    }
}

fn emit(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let pad = |out: &mut String, level: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..level {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => number_into(out, *n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                emit(out, item, indent + 1, pretty);
            }
            if !items.is_empty() {
                pad(out, indent);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                emit(out, item, indent + 1, pretty);
            }
            if !pairs.is_empty() {
                pad(out, indent);
            }
            out.push('}');
        }
    }
}

/// Compact JSON encoding of `v`.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    emit(&mut out, v, 0, false);
    out
}

/// Pretty (2-space indented) JSON encoding of `v`.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    emit(&mut out, v, 0, true);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_nested_values() {
        let v = Value::object(vec![
            ("name", Value::from("dcc")),
            ("runs", Value::from(vec![1usize, 2, 3])),
            ("ok", Value::from(true)),
        ]);
        assert_eq!(to_string(&v), r#"{"name":"dcc","runs":[1,2,3],"ok":true}"#);
        assert!(to_string_pretty(&v).contains("\n  \"runs\""));
    }

    #[test]
    fn escapes_strings_and_formats_numbers() {
        assert_eq!(to_string(&Value::from("a\"b\n")), r#""a\"b\n""#);
        assert_eq!(to_string(&Value::Number(2.5)), "2.5");
        assert_eq!(to_string(&Value::Number(3.0)), "3");
        assert_eq!(to_string(&Value::Null), "null");
    }
}
